"""The mediator: the component that allocates queries (Figure 1).

The mediator receives queries from consumers, asks its configured
:class:`~repro.core.policy.AllocationPolicy` for a decision, dispatches
the query to the allocated providers, and performs the *satisfaction
bookkeeping* that the model of Section II prescribes:

* every **informed** provider records one proposal ``(PI_q[p],
  performed?)`` in its Definition-2 window;
* the **consumer** records the Equation-1 per-query satisfaction over
  the providers that will perform the query, together with the
  adequation (best achievable) value used by the analysis layer;
* the metrics hub is notified of the mediation and, via the consumer's
  completion listener, of the completion.

Consultation cost is modelled: a policy with
``consults_participants=True`` pays one request/reply round-trip to the
consumer and to every consulted provider before the allocation can be
dispatched (the round-trips run in parallel, so the delay is the
maximum over the exchanged pairs), which is exactly why KnBest bounds
the consulted set to ``kn`` providers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.policy import AllocationContext, AllocationDecision, AllocationPolicy
from repro.core.satisfaction import adequation as compute_adequation
from repro.core.satisfaction import consumer_query_satisfaction
from repro.des.entity import Entity
from repro.des.network import Message, Network
from repro.des.scheduler import Simulator
from repro.des.tracing import NULL_RECORDER, TraceRecorder
from repro.system.query import AllocationRecord, Query, QueryStatus
from repro.system.registry import SystemRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.provider import Provider


class MediationObserver:
    """Protocol of the metrics hub the mediator reports to."""

    def record_mediation(self, record: AllocationRecord) -> None:  # pragma: no cover
        raise NotImplementedError


class Mediator(Entity):
    """Allocates queries using a pluggable policy.

    Parameters
    ----------
    sim, network:
        Simulation kernel bindings.
    registry:
        Source of the capable set ``P_q``.
    policy:
        The allocation technique under study.
    observer:
        Optional metrics hub; every mediation (success or failure) is
        reported to it.
    trace:
        Optional structured trace (Figure-1 pipeline bench).
    adequation_over_candidates:
        When True, the adequation value stored on each record considers
        the whole capable set ``P_q`` (one consumer-intention
        evaluation per candidate -- more faithful to [12], costlier);
        when False (default), the informed set is used.
    keep_records:
        Retain every :class:`AllocationRecord` on the mediator for
        post-run analysis.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        registry: SystemRegistry,
        policy: AllocationPolicy,
        observer: Optional[MediationObserver] = None,
        trace: TraceRecorder = NULL_RECORDER,
        adequation_over_candidates: bool = False,
        keep_records: bool = True,
        name: str = "mediator",
    ) -> None:
        super().__init__(sim, name=name)
        self.network = network
        self.registry = registry
        self.policy = policy
        self.observer = observer
        self.trace = trace
        self.adequation_over_candidates = adequation_over_candidates
        self.keep_records = keep_records
        self.records: List[AllocationRecord] = []
        self.mediations = 0
        self.failures = 0
        self.coordination_messages = 0

    # ------------------------------------------------------------------
    # Entity hook
    # ------------------------------------------------------------------

    #: Fast-engine direct delivery (see Entity.FAST_HANDLERS).
    FAST_HANDLERS = {"query": "mediate"}

    def receive(self, message: Message) -> None:
        if message.kind != "query":
            raise ValueError(f"mediator got unexpected message {message.kind!r}")
        self.mediate(message.payload)

    # ------------------------------------------------------------------
    # Mediation pipeline
    # ------------------------------------------------------------------

    def mediate(self, query: Query) -> AllocationRecord:
        """Run the full pipeline for one query; returns its record."""
        self.mediations += 1
        # The registry's cached P_q snapshot (shared with the fast
        # engine): O(|P_q|) on rebuild, one dict probe between
        # membership/online transitions.  Read-only downstream.
        candidates = self.registry.capable_snapshot(query.topic)
        # Tracing is lazy: the f-string payloads are only built when a
        # recorder is actually listening, so the common (untraced) case
        # costs one attribute check per stage.
        if self.trace.enabled:
            self.trace.record(
                self.now,
                "mediate",
                f"query {query.qid} from {query.consumer_id}: |P_q|={len(candidates)}",
                qid=query.qid,
            )
        if not candidates:
            return self._fail(query)

        ctx = AllocationContext(now=self.now, trace=self.trace)
        decision = self._select(query, candidates, ctx)
        if decision.is_failure:
            return self._fail(query)
        return self._commit(query, candidates, decision)

    def _select(
        self,
        query: Query,
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        """Ask the policy for a decision; the fast engine overrides this."""
        return self.policy.select(query, candidates, ctx)

    def _fail(self, query: Query) -> AllocationRecord:
        """No provider could perform the query: zero satisfaction, notify."""
        self.failures += 1
        query.status = QueryStatus.FAILED
        record = AllocationRecord(query=query, decided_at=self.now)
        record.adequation = 0.0
        # Equation 1 with an empty performer set: satisfaction is 0.
        query.consumer.record_query_satisfaction(0.0, adequation=0.0)
        self.network.send("mediation-failed", self, query.consumer, payload=record)
        if self.trace.enabled:
            self.trace.record(
                self.now, "fail", f"query {query.qid}: no capable provider"
            )
        self._store(record)
        return record

    def _commit(
        self,
        query: Query,
        candidates: Sequence["Provider"],
        decision: AllocationDecision,
    ) -> AllocationRecord:
        consumer = query.consumer
        allocated_ids = {p.participant_id for p in decision.allocated}

        # -- provider-side bookkeeping (Definition 2 windows) -----------
        provider_intentions = dict(decision.provider_intentions)
        for provider in decision.informed:
            pid = provider.participant_id
            if pid not in provider_intentions:
                provider_intentions[pid] = provider.intention_for(query)
            provider.record_proposal(provider_intentions[pid], pid in allocated_ids)

        # -- consumer-side bookkeeping (Equation 1 / Definition 1) ------
        consumer_intentions = dict(decision.consumer_intentions)
        for provider in decision.allocated:
            pid = provider.participant_id
            if pid not in consumer_intentions:
                consumer_intentions[pid] = consumer.intention_for(query, provider)
        # Iterate in decision order, not set order: Equation-1 float
        # summation must not depend on PYTHONHASHSEED.
        performer_intentions = [
            consumer_intentions[p.participant_id] for p in decision.allocated
        ]
        satisfaction = consumer_query_satisfaction(performer_intentions, query.n_results)

        adequation_pool = candidates if self.adequation_over_candidates else decision.informed
        pool_intentions = [
            consumer_intentions[p.participant_id]
            if p.participant_id in consumer_intentions
            else consumer.intention_for(query, p)
            for p in adequation_pool
        ]
        adequation_value = compute_adequation(pool_intentions, query.n_results)
        consumer.record_query_satisfaction(satisfaction, adequation=adequation_value)

        # -- consultation cost -------------------------------------------
        consult_delay = 0.0
        if self.policy.consults_participants:
            consult_delay = self._consultation_delay(consumer, decision.informed)
            self.coordination_messages += decision.consult_messages
        # outcome notification to every informed provider
        self.coordination_messages += len(decision.informed)

        record = AllocationRecord(
            query=query,
            decided_at=self.now,
            allocated=list(decision.allocated),
            informed=list(decision.informed),
            consumer_intentions=consumer_intentions,
            provider_intentions=provider_intentions,
            scores=dict(decision.scores),
            omegas=dict(decision.omegas),
            adequation=adequation_value,
            consultation_delay=consult_delay,
        )
        query.status = QueryStatus.ALLOCATED
        self._dispatch_record(record, consumer, consult_delay)
        if self.trace.enabled:
            self.trace.record(
                self.now,
                "allocate",
                f"query {query.qid}: -> {sorted(allocated_ids)} "
                f"(informed {len(record.informed)}, consult_delay={consult_delay:.3f})",
                qid=query.qid,
            )
        self._store(record)
        return record

    def _dispatch_record(
        self, record: AllocationRecord, consumer, consult_delay: float
    ) -> None:
        """Schedule the post-consultation dispatch of one allocation.

        The event-faithful form: one scheduler event at the end of the
        consultation, which sends one ``execute`` message per allocated
        provider plus the ``mediation-ok`` notification ("sends the
        mediation result to the consumer", Section III; consumers use
        it to arm their result deadline).  The fast engine overrides
        this with a collapsed single-event path when the latency model
        is deterministic.
        """

        def dispatch() -> None:
            for provider in record.allocated:
                self.network.send("execute", self, provider, payload=record)
            self.network.send("mediation-ok", self, consumer, payload=record)

        self.sim.schedule_in(
            consult_delay, dispatch, label=f"dispatch:{record.query.qid}"
        )

    def _consultation_delay(self, consumer, informed: Sequence["Provider"]) -> float:
        """Parallel request/reply round-trips: the slowest pair gates."""
        latency = self.network.latency
        worst = latency.delay(self, consumer) + latency.delay(consumer, self)
        for provider in informed:
            rtt = latency.delay(self, provider) + latency.delay(provider, self)
            if rtt > worst:
                worst = rtt
        return worst

    def _store(self, record: AllocationRecord) -> None:
        if self.keep_records:
            self.records.append(record)
        if self.observer is not None:
            self.observer.record_mediation(record)

    def __repr__(self) -> str:
        return (
            f"Mediator(policy={self.policy.name!r}, mediations={self.mediations}, "
            f"failures={self.failures})"
        )
