"""The pluggable allocation-policy interface.

Design decision D2 (DESIGN.md): every query-allocation technique --
SbQA itself and all baselines -- implements one method,
:meth:`AllocationPolicy.select`, mapping ``(query, P_q)`` to an
:class:`AllocationDecision`.  The satisfaction model then analyses all
of them uniformly, which is claim (i) of the paper: "the proposed
satisfaction model allows analyzing different query allocation
techniques no matter their query allocation principle".

A decision distinguishes:

* ``allocated`` -- the providers that will perform the query;
* ``informed`` -- the providers touched by the mediation (SbQA's
  consulted set ``Kn``); these enter the Definition-2 proposal window.
  For direct-allocation baselines the two coincide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.des.tracing import NULL_RECORDER, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.provider import Provider
    from repro.system.query import Query


@dataclass
class AllocationContext:
    """What a policy may consult while deciding (beyond the query)."""

    now: float
    trace: TraceRecorder = NULL_RECORDER


@dataclass
class AllocationDecision:
    """Outcome of one policy invocation for one query."""

    allocated: List["Provider"] = field(default_factory=list)
    informed: List["Provider"] = field(default_factory=list)
    consumer_intentions: Dict[str, float] = field(default_factory=dict)
    provider_intentions: Dict[str, float] = field(default_factory=dict)
    scores: Dict[str, float] = field(default_factory=dict)
    omegas: Dict[str, float] = field(default_factory=dict)
    consult_messages: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.informed:
            self.informed = list(self.allocated)
        allocated_ids = {p.participant_id for p in self.allocated}
        informed_ids = {p.participant_id for p in self.informed}
        if not allocated_ids <= informed_ids:
            raise ValueError("allocated providers must be a subset of informed providers")

    @property
    def is_failure(self) -> bool:
        return not self.allocated


class FastAllocationDecision:
    """Duck-typed :class:`AllocationDecision` for the mediation hot path.

    Same attribute surface, no dataclass machinery and no
    ``__post_init__`` validation -- producers (``select_fast``
    implementations) guarantee the allocated-subset-of-informed
    invariant by construction, and the fast mediator consumes the
    decision exactly once.  Anything written against
    :class:`AllocationDecision`'s attributes works on either.
    """

    __slots__ = (
        "allocated",
        "informed",
        "consumer_intentions",
        "provider_intentions",
        "scores",
        "omegas",
        "consult_messages",
        "metadata",
    )

    def __init__(
        self,
        allocated,
        informed=None,
        consumer_intentions=None,
        provider_intentions=None,
        scores=None,
        omegas=None,
        consult_messages=0,
        metadata=None,
    ) -> None:
        # informed defaults to the allocated list *itself* (not a copy,
        # unlike AllocationDecision.__post_init__): a fast decision is
        # consumed exactly once and the record stores both fields
        # read-only, so the alias is safe -- but code that mutates
        # record.allocated in place would corrupt record.informed too;
        # copy before mutating.  Every mapping default is a *fresh*
        # dict (the fast mediator adopts and completes these in place).
        self.allocated = allocated
        self.informed = allocated if informed is None else informed
        self.consumer_intentions = (
            {} if consumer_intentions is None else consumer_intentions
        )
        self.provider_intentions = (
            {} if provider_intentions is None else provider_intentions
        )
        self.scores = {} if scores is None else scores
        self.omegas = {} if omegas is None else omegas
        self.consult_messages = consult_messages
        self.metadata = {} if metadata is None else metadata

    @property
    def is_failure(self) -> bool:
        return not self.allocated


class AllocationPolicy:
    """Base class of every allocation technique.

    Subclasses set :attr:`name` (a stable identifier used in reports)
    and :attr:`consults_participants` (True when the technique needs an
    intention round-trip before deciding, which costs extra latency and
    messages -- SbQA and the economic bidding baseline do; one-shot
    baselines do not).
    """

    name: str = "abstract"
    consults_participants: bool = False

    def select(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        """Decide the allocation of ``query`` among ``candidates``.

        ``candidates`` is the non-empty capable set ``P_q``; the
        mediator handles the empty case before calling the policy.
        """
        raise NotImplementedError

    def select_fast(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> "AllocationDecision":
        """Hot-path :meth:`select`: same decision, fewer allocations.

        The fast engine (:mod:`repro.core.engine`) calls this instead
        of :meth:`select` whenever tracing is off, so *every* policy is
        covered by ``engine="fast"``.  The contract is strict
        bit-parity: every float and every ordering must match what
        :meth:`select` produces from the same state.  Two additional
        hot-path assumptions the built-in overrides exploit:

        * ``candidates`` is an immutable snapshot (the registry's
          reusable :meth:`~repro.system.registry.SystemRegistry.
          capable_snapshot` tuple), so derived data may be cached on
          its identity;
        * ``ctx.now`` equals the simulation clock of every candidate.

        The default delegates to :meth:`select`, so third-party
        policies are correct (if not faster) out of the box.
        """
        return self.select(query, candidates, ctx)

    def describe(self) -> Dict[str, object]:
        """Human-readable parameterisation (reports, EXPERIMENTS.md)."""
        return {"name": self.name}

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.describe().items() if k != "name")
        return f"{type(self).__name__}({params})"


def allocation_count(query: "Query", pool_size: int) -> int:
    """How many providers to allocate: ``min(q.n, |pool|)``.

    The paper allocates to the ``min(n, kn)`` best-ranked providers;
    baselines use the same rule with their own pool.
    """
    return min(query.n_results, pool_size)
