"""SQLB provider scoring and ranking (Definition 3 of the paper).

The mediator scores a provider ``p`` for a query ``q`` by *balancing*
the provider's intention ``PI_q[p]`` against the consumer's intention
``CI_q[p]``, both in [-1, 1]::

    scr_q(p) =  PI^omega * CI^(1-omega)                      if PI > 0 and CI > 0
             -( (1 - PI + eps)^omega * (1 - CI + eps)^(1-omega) )   otherwise

* ``omega`` in [0, 1] sets whose intention matters more (Equation 2
  makes it adaptive; see :mod:`repro.core.omega`).
* ``eps > 0`` (usually 1) keeps the negative branch informative when an
  intention equals 1: without it, ``(1 - PI)`` would collapse to 0 and
  erase the other side's opinion from the product.

Properties (all covered by tests):

* scores are positive iff both intentions are positive -- a provider
  that wants the query *and* is wanted by the consumer always outranks
  any provider for which either side objects;
* on the positive branch the score increases with both intentions;
* on the negative branch the score increases (towards 0) with both
  intentions, so "less objectionable" providers still rank higher;
* ``omega = 1`` ranks by provider intention only, ``omega = 0`` by
  consumer intention only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

#: The paper: "Parameter eps > 0, usually set to 1".
DEFAULT_EPSILON = 1.0


def sqlb_score(
    provider_intention: float,
    consumer_intention: float,
    omega: float,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Definition 3: balance a provider's and a consumer's intention.

    Parameters
    ----------
    provider_intention:
        ``PI_q[p]`` in [-1, 1], the provider's intention to perform q.
    consumer_intention:
        ``CI_q[p]`` in [-1, 1], the consumer's intention to allocate q
        to p.
    omega:
        Balance in [0, 1]; weight of the provider side.
    epsilon:
        Strictly positive guard of the negative branch.

    Returns
    -------
    float
        A score in ``(0, 1]`` when both intentions are positive, and in
        ``[-(2 + eps), 0]`` otherwise.  Higher is better in both cases.
    """
    if not -1.0 <= provider_intention <= 1.0:
        raise ValueError(f"provider intention must be in [-1, 1], got {provider_intention}")
    if not -1.0 <= consumer_intention <= 1.0:
        raise ValueError(f"consumer intention must be in [-1, 1], got {consumer_intention}")
    if not 0.0 <= omega <= 1.0:
        raise ValueError(f"omega must be in [0, 1], got {omega}")
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be strictly positive, got {epsilon}")

    if provider_intention > 0.0 and consumer_intention > 0.0:
        return (provider_intention ** omega) * (consumer_intention ** (1.0 - omega))
    penalty_provider = (1.0 - provider_intention + epsilon) ** omega
    penalty_consumer = (1.0 - consumer_intention + epsilon) ** (1.0 - omega)
    return -(penalty_provider * penalty_consumer)


@dataclass(frozen=True)
class ScoredProvider:
    """One row of the mediator's ranking vector ``R``."""

    provider_id: str
    score: float
    omega: float
    provider_intention: float
    consumer_intention: float


def rank_providers(
    scored: Sequence[ScoredProvider],
    tie_break: Callable[[ScoredProvider], Tuple] = lambda s: (s.provider_id,),
) -> List[ScoredProvider]:
    """Build the ranking vector ``R``: best score first.

    ``R[0]`` is the best-ranked provider, ``R[1]`` the second, and so
    on (the paper indexes from 1).  Ties are broken deterministically
    -- by provider identifier unless the caller supplies a different
    key -- so a seeded simulation is reproducible.
    """
    return sorted(scored, key=lambda s: (-s.score,) + tuple(tie_break(s)))


def score_pairs(
    pairs: Sequence[Tuple[str, float, float]],
    omega_for: Callable[[str], float],
    epsilon: float = DEFAULT_EPSILON,
) -> List[ScoredProvider]:
    """Score ``(provider_id, PI, CI)`` triples with a per-provider omega.

    Equation 2 makes omega depend on the satisfaction of the *pair*
    (consumer, provider), so each provider may be scored under its own
    balance; ``omega_for`` supplies it.
    """
    result = []
    for provider_id, provider_intention, consumer_intention in pairs:
        omega = omega_for(provider_id)
        score = sqlb_score(provider_intention, consumer_intention, omega, epsilon)
        result.append(
            ScoredProvider(
                provider_id=provider_id,
                score=score,
                omega=omega,
                provider_intention=provider_intention,
                consumer_intention=consumer_intention,
            )
        )
    return result
