"""SQLB provider scoring and ranking (Definition 3 of the paper).

The mediator scores a provider ``p`` for a query ``q`` by *balancing*
the provider's intention ``PI_q[p]`` against the consumer's intention
``CI_q[p]``, both in [-1, 1]::

    scr_q(p) =  PI^omega * CI^(1-omega)                      if PI > 0 and CI > 0
             -( (1 - PI + eps)^omega * (1 - CI + eps)^(1-omega) )   otherwise

* ``omega`` in [0, 1] sets whose intention matters more (Equation 2
  makes it adaptive; see :mod:`repro.core.omega`).
* ``eps > 0`` (usually 1) keeps the negative branch informative when an
  intention equals 1: without it, ``(1 - PI)`` would collapse to 0 and
  erase the other side's opinion from the product.

Properties (all covered by tests):

* scores are positive iff both intentions are positive -- a provider
  that wants the query *and* is wanted by the consumer always outranks
  any provider for which either side objects;
* on the positive branch the score increases with both intentions;
* on the negative branch the score increases (towards 0) with both
  intentions, so "less objectionable" providers still rank higher;
* ``omega = 1`` ranks by provider intention only, ``omega = 0`` by
  consumer intention only.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

#: The paper: "Parameter eps > 0, usually set to 1".
DEFAULT_EPSILON = 1.0

#: Environment switch for the scoring backend.  Two spellings per
#: backend: ``scalar`` (alias ``python``) is the reference kernel --
#: bit-identical to :func:`sqlb_score`, and the parity *oracle* the
#: differential tests replay against -- while ``vectorized`` (alias
#: ``numpy``) is the default batch kernel.  numpy's ``pow`` can differ
#: from CPython's by the final ulp, so every digest-critical path (the
#: allocation engines, the event-faithful policy ``select``) pins
#: ``backend="python"`` explicitly: the fast/event bit-parity contract
#: cannot be voided from the environment.  The switch is read once at
#: import (the batch kernel sits on the mediation hot path); the fast
#: engine also consults it, at mediator construction, to decide
#: between its fused structure-of-arrays kernel (default) and the
#: scalar oracle path (``SBQA_SCORING_BACKEND=scalar``).
SCORING_BACKEND_ENV = "SBQA_SCORING_BACKEND"

#: Accepted backend spellings -> canonical backend name.
BACKEND_ALIASES = {
    "python": "python",
    "scalar": "python",
    "numpy": "numpy",
    "vectorized": "numpy",
}

try:  # gated: the toolchain may not ship numpy
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None


def resolve_backend(backend: Optional[str] = None) -> str:
    """Canonical backend name ("python" | "numpy") for any spelling.

    ``None`` resolves to the import-time default: the value of
    ``SBQA_SCORING_BACKEND`` when set, else ``vectorized`` when numpy
    is importable and ``scalar`` otherwise.
    """
    if backend is None:
        return _DEFAULT_BACKEND
    try:
        return BACKEND_ALIASES[backend]
    except KeyError:
        raise ValueError(
            f"unknown scoring backend {backend!r}; valid: "
            f"{', '.join(sorted(BACKEND_ALIASES))}"
        ) from None


def _resolve_default() -> str:
    configured = os.environ.get(SCORING_BACKEND_ENV)
    if configured is None:
        return "numpy" if _np is not None else "python"
    resolved = BACKEND_ALIASES.get(configured)
    if resolved is None:
        raise ValueError(
            f"unknown {SCORING_BACKEND_ENV} value {configured!r}; valid: "
            f"{', '.join(sorted(BACKEND_ALIASES))}"
        )
    if resolved == "numpy" and _np is None:  # pragma: no cover - no-numpy env
        raise RuntimeError(
            f"{SCORING_BACKEND_ENV}={configured} requested but numpy is "
            "not importable; use 'scalar'"
        )
    return resolved


_DEFAULT_BACKEND = _resolve_default()


def sqlb_score(
    provider_intention: float,
    consumer_intention: float,
    omega: float,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Definition 3: balance a provider's and a consumer's intention.

    Parameters
    ----------
    provider_intention:
        ``PI_q[p]`` in [-1, 1], the provider's intention to perform q.
    consumer_intention:
        ``CI_q[p]`` in [-1, 1], the consumer's intention to allocate q
        to p.
    omega:
        Balance in [0, 1]; weight of the provider side.
    epsilon:
        Strictly positive guard of the negative branch.

    Returns
    -------
    float
        A score in ``(0, 1]`` when both intentions are positive, and in
        ``[-(2 + eps), 0]`` otherwise.  Higher is better in both cases.
    """
    if not -1.0 <= provider_intention <= 1.0:
        raise ValueError(f"provider intention must be in [-1, 1], got {provider_intention}")
    if not -1.0 <= consumer_intention <= 1.0:
        raise ValueError(f"consumer intention must be in [-1, 1], got {consumer_intention}")
    if not 0.0 <= omega <= 1.0:
        raise ValueError(f"omega must be in [0, 1], got {omega}")
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be strictly positive, got {epsilon}")

    if provider_intention > 0.0 and consumer_intention > 0.0:
        return (provider_intention ** omega) * (consumer_intention ** (1.0 - omega))
    penalty_provider = (1.0 - provider_intention + epsilon) ** omega
    penalty_consumer = (1.0 - consumer_intention + epsilon) ** (1.0 - omega)
    return -(penalty_provider * penalty_consumer)


def score_providers_batch(
    provider_intentions: Sequence[float],
    consumer_intentions: Sequence[float],
    omegas: Sequence[float],
    epsilon: float = DEFAULT_EPSILON,
    backend: Optional[str] = None,
    validate: bool = True,
) -> List[float]:
    """Definition 3 over a whole candidate set in one pass.

    Semantically equivalent to ``[sqlb_score(pi, ci, w, epsilon) for
    pi, ci, w in zip(...)]`` -- same branch structure, same arithmetic
    expressions, so the returned floats are *bit-identical* to the
    scalar kernel -- but validation is hoisted out of the per-provider
    work and the per-call function overhead disappears.  This is what
    the mediation hot path scores ``Kn`` with.

    Parameters
    ----------
    provider_intentions, consumer_intentions, omegas:
        Equal-length sequences: ``PI_q[p]``, ``CI_q[p]`` and the
        Equation-2 balance for each candidate (omega is per *pair*, so
        it is a sequence, not a scalar).
    epsilon:
        Strictly positive guard of the negative branch.
    backend:
        Any :data:`BACKEND_ALIASES` spelling (``"scalar"``/``"python"``
        or ``"vectorized"``/``"numpy"``); ``None`` (default) uses the
        value the ``SBQA_SCORING_BACKEND`` environment variable held at
        import time (``vectorized`` when unset and numpy is
        importable).  The vectorized backend may differ from the scalar
        kernel by the final ulp, which is why digest-critical callers
        pin ``backend="python"``.
    validate:
        Range-check every input (the scalar kernel's behaviour); both
        backends reject out-of-range and non-finite (inf/NaN) inputs
        identically.  The mediation hot path passes False: its inputs
        come from intention models (clamped into [-1, 1]) and omega
        policies (constructed in [0, 1]), so the checks cannot fire.
    """
    n = len(provider_intentions)
    if len(consumer_intentions) != n or len(omegas) != n:
        raise ValueError(
            f"batch inputs must have equal lengths, got "
            f"{n}/{len(consumer_intentions)}/{len(omegas)}"
        )
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be strictly positive, got {epsilon}")

    backend = resolve_backend(backend)
    if backend == "numpy":
        if _np is None:
            raise RuntimeError(
                "numpy backend requested but numpy is not importable; "
                "use backend='python'"
            )
        return _score_batch_numpy(
            provider_intentions, consumer_intentions, omegas, epsilon, validate
        )

    if validate:
        # A NaN fails every range comparison, so non-finite inputs are
        # rejected by the same check that bounds the range -- matching
        # the scalar kernel and the vectorized path's isfinite mask.
        for pi in provider_intentions:
            if not -1.0 <= pi <= 1.0:
                raise ValueError(f"provider intention must be in [-1, 1], got {pi}")
        for ci in consumer_intentions:
            if not -1.0 <= ci <= 1.0:
                raise ValueError(f"consumer intention must be in [-1, 1], got {ci}")
        for omega in omegas:
            if not 0.0 <= omega <= 1.0:
                raise ValueError(f"omega must be in [0, 1], got {omega}")

    scores = []
    append = scores.append
    for pi, ci, omega in zip(provider_intentions, consumer_intentions, omegas):
        if pi > 0.0 and ci > 0.0:
            append((pi ** omega) * (ci ** (1.0 - omega)))
        else:
            append(
                -(
                    ((1.0 - pi + epsilon) ** omega)
                    * ((1.0 - ci + epsilon) ** (1.0 - omega))
                )
            )
    return scores


def _validate_column_numpy(values, low: float, high: float, what: str) -> None:
    """Vectorized range check matching the scalar kernel's rejection.

    ``asarray`` silently coerces integers (and integer arrays) to
    float64, which is fine -- but it coerces inf/NaN just as silently,
    and a NaN sails through ``>`` comparisons into the negative branch
    instead of raising like the scalar kernel does.  The isfinite mask
    closes that gap; the reported value is the first offender, like the
    scalar loop's.
    """
    bad = ~(_np.isfinite(values) & (values >= low) & (values <= high))
    if bad.any():
        offender = values[bad][0]
        raise ValueError(f"{what} must be in [{low:g}, {high:g}], got {offender}")


def _score_batch_numpy(
    provider_intentions: Sequence[float],
    consumer_intentions: Sequence[float],
    omegas: Sequence[float],
    epsilon: float,
    validate: bool = True,
) -> List[float]:
    """Vectorised Definition 3; same branch arithmetic as the scalar form."""
    pi = _np.asarray(provider_intentions, dtype=_np.float64)
    ci = _np.asarray(consumer_intentions, dtype=_np.float64)
    omega = _np.asarray(omegas, dtype=_np.float64)
    if validate:
        _validate_column_numpy(pi, -1.0, 1.0, "provider intention")
        _validate_column_numpy(ci, -1.0, 1.0, "consumer intention")
        _validate_column_numpy(omega, 0.0, 1.0, "omega")
    positive = (pi > 0.0) & (ci > 0.0)
    # Compute each branch only where it applies: the positive branch's
    # pi ** omega is undefined (complex) for negative intentions.
    scores = _np.empty_like(pi)
    scores[positive] = pi[positive] ** omega[positive] * (
        ci[positive] ** (1.0 - omega[positive])
    )
    negative = ~positive
    scores[negative] = -(
        ((1.0 - pi[negative] + epsilon) ** omega[negative])
        * ((1.0 - ci[negative] + epsilon) ** (1.0 - omega[negative]))
    )
    return [float(s) for s in scores]


@dataclass(frozen=True)
class ScoredProvider:
    """One row of the mediator's ranking vector ``R``."""

    provider_id: str
    score: float
    omega: float
    provider_intention: float
    consumer_intention: float


def rank_providers(
    scored: Sequence[ScoredProvider],
    tie_break: Callable[[ScoredProvider], Tuple] = lambda s: (s.provider_id,),
) -> List[ScoredProvider]:
    """Build the ranking vector ``R``: best score first.

    ``R[0]`` is the best-ranked provider, ``R[1]`` the second, and so
    on (the paper indexes from 1).  Ties are broken deterministically
    -- by provider identifier unless the caller supplies a different
    key -- so a seeded simulation is reproducible.
    """
    return sorted(scored, key=lambda s: (-s.score,) + tuple(tie_break(s)))


def score_pairs(
    pairs: Sequence[Tuple[str, float, float]],
    omega_for: Callable[[str], float],
    epsilon: float = DEFAULT_EPSILON,
) -> List[ScoredProvider]:
    """Score ``(provider_id, PI, CI)`` triples with a per-provider omega.

    Equation 2 makes omega depend on the satisfaction of the *pair*
    (consumer, provider), so each provider may be scored under its own
    balance; ``omega_for`` supplies it.
    """
    result = []
    for provider_id, provider_intention, consumer_intention in pairs:
        omega = omega_for(provider_id)
        score = sqlb_score(provider_intention, consumer_intention, omega, epsilon)
        result.append(
            ScoredProvider(
                provider_id=provider_id,
                score=score,
                omega=omega,
                provider_intention=provider_intention,
                consumer_intention=consumer_intention,
            )
        )
    return result
