"""The hot-path allocation engine: fast mediation, identical results.

The scoring -> rank -> bookkeeping loop runs once per mediation and
dominates wall-clock for every sweep and tune the repository runs, so
this module provides a **fast engine** -- a drop-in mediator/network
pair that produces *bit-identical allocations, records and metrics* to
the event-faithful core while cutting the per-mediation constant:

* :class:`FastNetwork` delivers messages without constructing
  :class:`~repro.des.network.Message` envelopes or per-send label
  strings for the message kinds the entities pre-declare
  (``Entity.FAST_HANDLERS``): same latency draws in the same order,
  same scheduling instants, same event ordering -- only the per-send
  allocations disappear.  Unknown kinds fall back to the envelope path.
* :class:`FastMediator` asks policies for their batched
  ``select_fast`` decision whenever tracing is off (*every* policy has
  one -- the base class delegates to ``select``, and SbQA plus all six
  baselines override it), reads ``P_q`` from the registry's cached
  capability snapshot, computes the consultation delay analytically
  when the latency model is deterministic (every round-trip is ``2c``,
  so the max over pairs is too), and -- when the one-way delay is a
  positive constant -- collapses the ``len(allocated) + 1``
  post-consultation delivery events of one allocation (which all share
  a clock instant) into a **single** scheduler event, scheduled at the
  same moments as the faithful chain so tie-breaking order is
  preserved.  The result path is batched the same way: each allocated
  provider's completion-closure + result-delivery event pair becomes a
  member of a per-finish-instant :class:`_ResultDrain`, so replicated
  queries on same-speed providers drain in two events total.

What is allowed to differ between the engines is the *number of
scheduler events and Python objects*; what must not differ is clock
values, allocations, satisfaction bookkeeping, records, and the
coordination-message accounting.  ``tests/core/test_engine_parity.py``
asserts byte-identical result digests across both engines, and
``benchmarks/bench_core_hotpath.py`` tracks the speedup.

Select the engine per run with ``ExperimentConfig(engine="fast")`` (the
default) or ``engine="event"`` -- the equivalence escape hatch that
keeps the reference implementation one flag away.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

import repro.core.scoring as _scoring
from repro.core.mediator import Mediator
from repro.core.policy import AllocationContext
from repro.core.soa import ConsultColumns, LazyAllocationRecord, fused_policy_supported
from repro.des.network import Network
from repro.des.tracing import NULL_RECORDER
from repro.system.query import AllocationRecord, QueryResult, QueryStatus

#: Engine mode names accepted by :func:`resolve_engine`.
ENGINE_MODES = ("fast", "event")

#: Default engine for newly constructed configs/specs.
DEFAULT_ENGINE = "fast"


def resolve_engine(engine: str) -> str:
    """Validate and canonicalise an engine mode name."""
    key = str(engine).lower()
    if key not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine {engine!r}; valid engines: {', '.join(ENGINE_MODES)}"
        )
    return key


class _FastDelivery:
    """Scheduled callable delivering one payload to one fast handler."""

    __slots__ = ("network", "handler", "payload")

    def __init__(
        self, network: "FastNetwork", handler: Callable[[Any], None], payload: Any
    ) -> None:
        self.network = network
        self.handler = handler
        self.payload = payload

    def __call__(self) -> None:
        self.network.messages_delivered += 1
        self.handler(self.payload)


class FastNetwork(Network):
    """A :class:`~repro.des.network.Network` without per-send envelopes.

    ``send`` draws the same latency (same stream, same order) and
    schedules delivery at the same instant as the base class, but for
    message kinds the recipient pre-declares in ``FAST_HANDLERS`` it
    schedules a small payload-carrying callable instead of building a
    frozen ``Message`` dataclass, a delivery closure and an f-string
    event label.  Counters (``messages_sent`` / ``messages_delivered``)
    advance exactly as in the base class.
    """

    def send(self, kind, sender, recipient, payload=None):
        handler = recipient.fast_handler(kind)
        if handler is None:
            # Unknown kind (tests, custom entities): full envelope path,
            # including the loud failure inside Entity.receive.
            return super().send(kind, sender, recipient, payload=payload)
        delay = self.latency.delay(sender, recipient)
        if delay < 0:
            raise ValueError(f"latency model produced negative delay {delay}")
        self.messages_sent += 1
        self.sim.post_in(delay, _FastDelivery(self, handler, payload))
        return None


class _DrainMember:
    """One provider's slot in a batched result drain.

    Stored in the provider's ``_pending`` map where the faithful path
    stores the completion :class:`~repro.des.events.EventHandle`, so
    ``Provider.crash`` cancels exactly this provider's completion (and
    therefore its result) without touching the rest of the batch.
    """

    __slots__ = ("provider", "start", "finish", "service", "cancelled")

    def __init__(self, provider, start: float, finish: float, service: float) -> None:
        self.provider = provider
        self.start = start
        self.finish = finish
        self.service = service
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class _ResultDrain:
    """One batched completion->delivery chain for same-instant results.

    The faithful result path costs two scheduler events *per allocated
    provider*: a completion closure at the provider's finish instant,
    which sends a ``result`` message whose delivery fires one one-way
    delay later.  Under a deterministic latency model, every member of
    one allocation that shares a finish instant shares the delivery
    instant too, so the whole group collapses into one two-hop drain:

    * **hop 1** fires at the shared finish instant and performs each
      member's completion bookkeeping (``Provider.finish_execution``)
      in allocated order -- the exact order the faithful consecutive
      completion events would fire in, since they are inserted
      back-to-back by the dispatch event and scheduler ties break on
      insertion order;
    * it then re-inserts *itself* for **hop 2** one one-way delay
      later -- the same insertion moment as the faithful ``result``
      deliveries, preserving tie order against third-party events --
      which builds each :class:`QueryResult` and hands it to the
      consumer, again in allocated order.

    Members cancelled before hop 1 (a provider crash cancels its
    ``_pending`` entry, which is the member) are skipped exactly like
    the faithful cancelled completion events; once hop 1 ran, the
    results are in flight and a later crash cannot recall them -- also
    the faithful behaviour.  Counters advance as in the faithful
    chain: ``messages_sent`` per member at completion time,
    ``messages_delivered`` per member at delivery time.
    """

    __slots__ = ("network", "record", "consumer", "delay", "members", "_delivering")

    def __init__(
        self, network: Network, record: AllocationRecord, consumer, delay: float
    ) -> None:
        self.network = network
        self.record = record
        self.consumer = consumer
        self.delay = delay
        self.members = []
        self._delivering = False

    def __call__(self) -> None:
        network = self.network
        if not self._delivering:
            # hop 1: the shared completion instant
            members = [m for m in self.members if not m.cancelled]
            if not members:
                return  # every member crashed away: nothing to deliver
            self.members = members
            record = self.record
            for member in members:
                member.provider.finish_execution(record, member.service)
            network.messages_sent += len(members)
            self._delivering = True
            network.sim.post_in(self.delay, self)
            return
        # hop 2: the shared delivery instant.  All members share the
        # arrival clock, so the consumer folds them in as one batch
        # (arrival time, response time and query handle resolved once)
        # instead of len(members) _on_result calls -- same bookkeeping
        # sequence in the same (allocated) order, bit-identical floats.
        members = self.members
        network.messages_delivered += len(members)
        record = self.record
        query = record.query
        results = [
            QueryResult(
                query=query,
                provider_id=member.provider.participant_id,
                started_at=member.start,
                finished_at=member.finish,
            )
            for member in members
        ]
        self.consumer.absorb_results(record, results)


class _CollapsedDispatch:
    """One batched delivery event for a whole allocation's dispatch.

    Under a deterministic latency model every post-consultation
    delivery of one allocation -- ``execute`` to each allocated
    provider, then ``mediation-ok`` to the consumer -- lands at the
    same clock instant, so the ``len(allocated) + 1`` delivery events
    collapse into this single callable.  The two-hop structure is
    load-bearing: :meth:`dispatch` is scheduled where the faithful
    dispatch closure would be, and only when it *fires* does it insert
    the batched delivery into the heap -- the same insertion moment as
    the faithful delivery events.  Scheduler ties break on insertion
    order, so inserting the delivery any earlier (e.g. directly at
    commit time) would reorder it against third-party events that
    share its timestamp and diverge from the event engine (a real
    occurrence under deterministic arrival processes, not a
    measure-zero float coincidence).  Counters advance exactly as in
    the faithful chain: ``messages_sent`` at dispatch time,
    ``messages_delivered`` at delivery time.

    The delivery hop also *starts the batched result drain*: instead of
    ``Provider.execute`` scheduling one completion closure per
    provider, members are enqueued via ``Provider.begin_execution``
    and grouped by finish instant into :class:`_ResultDrain` chains --
    one drain scheduled at each group's first-member position, which
    is exactly where the faithful chain inserts that group's first
    completion event.
    """

    __slots__ = ("network", "record", "consumer", "delay")

    def __init__(
        self, network: Network, record: AllocationRecord, consumer, delay: float
    ) -> None:
        self.network = network
        self.record = record
        self.consumer = consumer
        self.delay = delay

    def dispatch(self) -> None:
        """Consultation finished: send the batch (one scheduler event)."""
        network = self.network
        network.messages_sent += len(self.record.allocated) + 1
        network.sim.post_in(self.delay, self)

    def __call__(self) -> None:
        record = self.record
        network = self.network
        sim = network.sim
        now = sim.now
        network.messages_delivered += len(record.allocated) + 1
        delay = self.delay
        qid = record.query.qid
        drains = {}
        for provider in record.allocated:
            start, finish, service = provider.begin_execution(record)
            drain = drains.get(finish)
            if drain is None:
                drain = _ResultDrain(network, record, self.consumer, delay)
                drains[finish] = drain
            member = _DrainMember(provider, start, finish, service)
            drain.members.append(member)
            provider._pending[qid] = member
        # Batched heap insertion (one locals-hoisted pass instead of one
        # post_in per distinct finish instant).  Nothing else posts
        # between the first drain's creation and the end of the loop, so
        # inserting all drains here -- in dict insertion order, which is
        # first-member order -- assigns each drain the *same* seq number
        # the interleaved per-drain post_in gave it: tie order against
        # third-party events is bit-identical.
        sim.post_in_batch(
            (finish - now, drain) for finish, drain in drains.items()
        )
        self.consumer._on_allocation(record)


class FastMediator(Mediator):
    """The hot-path mediator: same pipeline, batched and collapsed.

    Four deviations from the base class, none of them observable in
    the results:

    * decisions come from the policy's ``select_fast`` whenever
      tracing is off -- *every* policy has one (the base class
      delegates to ``select``; SbQA and all six baselines override it
      with batched, slot-based implementations), so there is no
      SbQA-only fallback branch anymore;
    * ``P_q`` is the registry's cached
      :meth:`~repro.system.registry.SystemRegistry.capable_snapshot`
      tuple -- no per-mediation list build;
    * when the latency model reports a :meth:`constant one-way delay
      <repro.des.network.LatencyModel.constant_delay>`, the
      consultation delay is ``2c`` analytically instead of a max over
      ``|Kn| + 1`` identical round-trips;
    * when that constant is positive and tracing is off, the
      ``len(allocated) + 1`` same-instant deliveries of an allocation
      are one :class:`_CollapsedDispatch` event (two events per
      dispatch instead of ``len(allocated) + 2``), and the result
      path is batched too: completions are grouped by finish instant
      into :class:`_ResultDrain` chains instead of one
      completion-closure + delivery pair per provider.  (At ``c == 0``
      every event of a mediation shares one clock instant, where
      relative event order *is* semantics, so the faithful
      per-delivery structure is kept -- :class:`FastNetwork` still
      strips the envelopes.)

    With a *random* latency model the collapse is disabled entirely:
    delivery delays must be drawn from the shared latency stream at
    dispatch time, in dispatch order, or every later draw in the run
    would shift.
    """

    #: Shard ordinal when this mediator is one shard of a federation
    #: (see :mod:`repro.federation`); 0 standalone.  Part of the fused
    #: column-cache key so per-shard column state stays disjoint even
    #: if shard mediators ever share a cache.
    shard_ordinal = 0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._constant_one_way = self.network.latency.constant_delay()
        self._fast_select = self.policy.select_fast
        # One reusable context for the hot loop (consumed synchronously
        # by exactly one select per mediation; only .now changes).
        self._ctx = AllocationContext(now=0.0, trace=NULL_RECORDER)
        # The fused structure-of-arrays kernel (see repro.core.soa) is
        # the default mediation path; it engages when
        #  * the scoring backend is not pinned to the scalar oracle
        #    (SBQA_SCORING_BACKEND=scalar routes every mediation through
        #    select_fast, the differential-testing reference);
        #  * the policy is exactly SbQAPolicy with a built-in omega;
        #  * the latency model has a positive constant one-way delay
        #    (the same condition the collapsed dispatch requires).
        # Model support is decided per (snapshot, consumer, topic) when
        # the columns are built; unsupported mixes fall back per query.
        c = self._constant_one_way
        self._fused_columns: Optional[dict] = None
        if (
            c is not None
            and c > 0.0
            and _scoring._DEFAULT_BACKEND != "python"
            and fused_policy_supported(self.policy)
        ):
            self._fused_columns = {}

    def mediate(self, query) -> AllocationRecord:
        if self.trace.enabled:
            return super().mediate(query)
        if self._fused_columns is not None:
            return self._mediate_fused(query)
        self.mediations += 1
        candidates = self.registry.capable_snapshot(query.topic)
        if not candidates:
            return self._fail(query)
        ctx = self._ctx
        ctx.now = self.now
        decision = self._fast_select(query, candidates, ctx)
        if not decision.allocated:
            return self._fail(query)
        return self._commit(query, candidates, decision)

    # No _select override: the hot mediate() above routes to select_fast
    # itself, and the super().mediate() fallback (tracing on) wants the
    # faithful policy.select that the base hook already provides.

    def _mediate_fused(self, query) -> AllocationRecord:
        """One mediation through the fused SoA kernel.

        The entire SbQA pipeline -- KnBest stage 1 (the exact stdlib
        draw sequence over snapshot ordinals), stage 2 (utilization
        sort with integer-rank tie-breaks), intention consultation from
        the :class:`~repro.core.soa.ConsultColumns`, per-pair Equation-2
        omega, Definition-3 scores, ranking, and both satisfaction
        windows -- runs as one pass over ordinal columns, with the
        bookkeeping of :meth:`_commit` inlined.  Every float is
        produced by the same expression shapes in the same order as the
        select_fast/_commit path, so allocations, windows and digests
        are bit-identical (asserted by the differential oracle in
        ``tests/oracle/``).
        """
        self.mediations += 1
        topic = query.topic
        meta = self.registry.snapshot_meta(topic)
        snapshot = meta.snapshot
        if not snapshot:
            return self._fail(query)
        consumer = query.consumer

        columns = self._fused_columns
        key = (self.shard_ordinal, consumer.participant_id, topic)
        cols = columns.get(key)
        if cols is None or cols.snapshot is not snapshot:
            if cols is not None:
                cols.detach()
            cols = ConsultColumns.build(
                snapshot, meta, consumer, topic, shard=self.shard_ordinal
            )
            columns[key] = cols
        if not cols.supported:
            # Model mix outside the column encoding (custom intention
            # models): scalar oracle path, same decision, same digests.
            ctx = self._ctx
            ctx.now = self.now
            decision = self._fast_select(query, snapshot, ctx)
            if not decision.allocated:
                return self._fail(query)
            return self._commit(query, snapshot, decision)
        if cols.dirty:
            cols.refresh()

        policy = self.policy
        selector = policy.selector
        k = selector.k
        kn = selector.kn
        n = len(snapshot)

        # -- KnBest stage 1: the RandomStream.sample_indices draw
        # sequence, inlined (getrandbits resolved once, no frames) ----
        getrandbits = selector._stream._rng.getrandbits
        if k > n:
            k = n
        sampled = [0] * k
        setsize = 21
        if k > 5:
            setsize += 4 ** math.ceil(math.log(k * 3, 4))
        if n <= setsize:
            pool = list(range(n))
            for i in range(k):
                m = n - i
                bits = m.bit_length()
                j = getrandbits(bits)
                while j >= m:
                    j = getrandbits(bits)
                sampled[i] = pool[j]
                pool[j] = pool[m - 1]
        else:
            selected: set = set()
            selected_add = selected.add
            bits = n.bit_length()
            for i in range(k):
                j = getrandbits(bits)
                while j >= n:
                    j = getrandbits(bits)
                while j in selected:
                    j = getrandbits(bits)
                    while j >= n:
                        j = getrandbits(bits)
                selected_add(j)
                sampled[i] = j

        # -- KnBest stage 2: utilization sort, rank tie-breaks ---------
        # Provider.utilization inlined (same max/min arithmetic); ranks
        # are order-isomorphic to participant ids within one snapshot.
        now = self.sim._now
        ranks = cols.ranks
        horizons = cols.horizons
        decorated = []
        append = decorated.append
        for s in sampled:
            backlog = snapshot[s]._busy_until - now
            if backlog < 0.0:
                backlog = 0.0
            u = backlog / horizons[s]
            if u > 1.0:
                u = 1.0
            append((u, ranks[s], s))
        decorated.sort()
        working = decorated[:kn]
        nw = len(working)

        # -- consultation + Equation 2 + Definition 3, one pass --------
        omega_fixed = policy._omega_fixed
        if omega_fixed is None:
            # ConsumerSatisfactionTracker.satisfaction(), inlined.
            ct_ = consumer.tracker
            n_sat = len(ct_._satisfactions)
            if n_sat:
                cs = ct_._sat_sum / n_sat
                if cs < 0.0:
                    cs = 0.0
                elif cs > 1.0:
                    cs = 1.0
            else:
                cs = 0.5
        pp = cols.pp
        betas = cols.betas
        ci_col = cols.ci
        trackers = cols.trackers
        epsilon = policy.config.epsilon
        ranked = []
        rank_append = ranked.append
        pi_list = []
        pi_append = pi_list.append
        for u, rank, s in working:
            # PI_q[p]: blend base + load term, clamped (the exact
            # expression shape of PreferenceUtilizationIntentions;
            # beta*(1 - 2u) must not be algebraically refactored).
            pi = pp[s] + betas[s] * (1.0 - 2.0 * u)
            if pi > 1.0:
                pi = 1.0
            elif pi < -1.0:
                pi = -1.0
            pi_append(pi)
            ci = ci_col[s]
            if omega_fixed is None:
                # ProviderSatisfactionTracker.satisfaction(), inlined.
                tracker = trackers[s]
                if tracker._proposals:
                    performed = tracker._performed_in_window
                    if performed:
                        ps = tracker._performed_unit_sum / performed
                        if ps < 0.0:
                            ps = 0.0
                        elif ps > 1.0:
                            ps = 1.0
                    else:
                        ps = 0.0
                else:
                    ps = 0.5
                omega = ((cs - ps) + 1.0) / 2.0
            else:
                omega = omega_fixed
            if pi > 0.0 and ci > 0.0:
                score = (pi ** omega) * (ci ** (1.0 - omega))
            else:
                score = -(
                    ((1.0 - pi + epsilon) ** omega)
                    * ((1.0 - ci + epsilon) ** (1.0 - omega))
                )
            rank_append((-score, rank, s, pi, ci, omega))
        ranked.sort()

        n_results = query.n_results
        take = n_results if n_results < nw else nw
        top = ranked[:take]
        chosen = {row[2] for row in top}
        allocated = [snapshot[row[2]] for row in top]

        # -- Equation 1 over the performer set (decision order) --------
        total = 0.0
        for row in top:
            total += (row[4] + 1.0) / 2.0
        satisfaction = total / n_results
        if satisfaction > 1.0:
            satisfaction = 1.0

        # -- Definition-2 windows (record_proposal inlined, working
        #    order -- the order _commit walks decision.informed) -------
        for i, (u, rank, s) in enumerate(working):
            tracker = trackers[s]
            proposals = tracker._proposals
            if len(proposals) == tracker.memory:
                evicted = proposals[0]
                if evicted[1]:
                    tracker._performed_in_window -= 1
                    tracker._performed_unit_sum -= (evicted[0] + 1.0) / 2.0
                tracker._evictions_since_rebuild += 1
            performed = s in chosen
            pi = pi_list[i]
            proposals.append((pi, performed))
            tracker.total_proposed += 1
            if performed:
                tracker.total_performed += 1
                tracker._performed_in_window += 1
                tracker._performed_unit_sum += (pi + 1.0) / 2.0
            if tracker._evictions_since_rebuild >= tracker.memory:
                tracker._rebuild_sums()

        # -- adequation over the configured pool -----------------------
        if self.adequation_over_candidates:
            pool_ci = sorted(ci_col, reverse=True)
        else:
            pool_ci = sorted((row[4] for row in ranked), reverse=True)
        total = 0.0
        for ci in pool_ci[:n_results]:
            total += (ci + 1.0) / 2.0
        adequation_value = total / n_results
        if adequation_value > 1.0:
            adequation_value = 1.0

        # -- Definition-1 window (record_query inlined) ----------------
        ct = consumer.tracker
        satisfactions = ct._satisfactions
        if len(satisfactions) == ct.memory:
            evicted_sat = satisfactions[0]
            evicted_adq = ct._adequations[0]
            ct._sat_sum -= evicted_sat
            ct._adq_sum -= evicted_adq
            if evicted_adq == 0.0:
                ratio = 1.0
            else:
                ratio = evicted_sat / evicted_adq
                if ratio > 1.0:
                    ratio = 1.0
            ct._ratio_sum -= ratio
            ct._evictions_since_rebuild += 1
        satisfactions.append(satisfaction)
        ct._adequations.append(adequation_value)
        ct._sat_sum += satisfaction
        ct._adq_sum += adequation_value
        if adequation_value == 0.0:
            ratio = 1.0
        else:
            ratio = satisfaction / adequation_value
            if ratio > 1.0:
                ratio = 1.0
        ct._ratio_sum += ratio
        ct.total_recorded += 1
        if ct._evictions_since_rebuild >= ct.memory:
            ct._rebuild_sums()

        # -- consultation cost + collapsed dispatch --------------------
        c = self._constant_one_way
        consult_delay = c + c
        self.coordination_messages += (2 * nw + 2) + nw

        record = LazyAllocationRecord(
            query,
            now,
            allocated,
            adequation_value,
            consult_delay,
            ranked,
            [row[2] for row in working],
            cols.pids,
            snapshot,
        )
        query.status = QueryStatus.ALLOCATED
        collapsed = _CollapsedDispatch(self.network, record, consumer, c)
        self.sim.post_in(consult_delay, collapsed.dispatch)
        if self.keep_records:
            self.records.append(record)
        if self.observer is not None:
            self.observer.record_mediation(record)
        return record

    def _commit(self, query, candidates, decision) -> AllocationRecord:
        if self.trace.enabled:
            return super()._commit(query, candidates, decision)
        consumer = query.consumer
        allocated = decision.allocated
        informed = decision.informed

        # -- provider-side bookkeeping (Definition 2 windows) -----------
        # The decision's intention dicts are adopted (and completed in
        # place) rather than copied: a decision is consumed exactly once
        # and the record owns the dicts afterwards, so the copy in the
        # event-faithful _commit buys nothing here.  Membership is
        # tested on the provider objects themselves (allocated holds the
        # same objects as informed, and |allocated| <= n is tiny).
        provider_intentions = decision.provider_intentions
        for provider in informed:
            pid = provider.participant_id
            intention = provider_intentions.get(pid)
            if intention is None:
                intention = provider.intention_for(query)
                provider_intentions[pid] = intention
            provider.tracker.record_proposal(intention, provider in allocated)

        # -- consumer-side bookkeeping (Equation 1 / Definition 1) ------
        # Inlined consumer_query_satisfaction / adequation: same
        # (i + 1) / 2 unit mapping summed in the same (decision) order,
        # same min(1, total / n) clamp, so the floats are identical.
        consumer_intentions = decision.consumer_intentions
        n_results = query.n_results
        total = 0.0
        for provider in allocated:
            pid = provider.participant_id
            intention = consumer_intentions.get(pid)
            if intention is None:
                intention = consumer.intention_for(query, provider)
                consumer_intentions[pid] = intention
            total += (intention + 1.0) / 2.0
        satisfaction = total / n_results
        if satisfaction > 1.0:
            satisfaction = 1.0

        adequation_pool = candidates if self.adequation_over_candidates else informed
        pool_intentions = []
        for p in adequation_pool:
            pid = p.participant_id
            intention = consumer_intentions.get(pid)
            if intention is None:
                intention = consumer.intention_for(query, p)
            pool_intentions.append(intention)
        pool_intentions.sort(reverse=True)
        total = 0.0
        for intention in pool_intentions[:n_results]:
            total += (intention + 1.0) / 2.0
        adequation_value = total / n_results
        if adequation_value > 1.0:
            adequation_value = 1.0
        consumer.record_query_satisfaction(satisfaction, adequation=adequation_value)

        # -- consultation cost ------------------------------------------
        consult_delay = 0.0
        if self.policy.consults_participants:
            consult_delay = self._consultation_delay(consumer, informed)
            self.coordination_messages += decision.consult_messages
        self.coordination_messages += len(informed)

        record = AllocationRecord(
            query=query,
            decided_at=self.now,
            allocated=allocated,
            informed=informed,
            consumer_intentions=consumer_intentions,
            provider_intentions=provider_intentions,
            scores=decision.scores,
            omegas=decision.omegas,
            adequation=adequation_value,
            consultation_delay=consult_delay,
        )
        query.status = QueryStatus.ALLOCATED
        self._dispatch_record(record, consumer, consult_delay)
        self._store(record)
        return record

    def _consultation_delay(self, consumer, informed) -> float:
        c = self._constant_one_way
        if c is not None:
            # Every request/reply round-trip is exactly c + c, so the
            # max over the consumer pair and all informed pairs is too.
            return c + c
        return super()._consultation_delay(consumer, informed)

    def _dispatch_record(
        self, record: AllocationRecord, consumer, consult_delay: float
    ) -> None:
        c = self._constant_one_way
        if c is None or c <= 0.0 or self.trace.enabled:
            super()._dispatch_record(record, consumer, consult_delay)
            return
        # Two hops, mirroring the faithful chain's scheduling moments
        # (and therefore its tie-breaking seq order and its clock
        # arithmetic: dispatch at now + consult_delay, delivery at
        # that instant + c); only the per-provider delivery events and
        # Message envelopes are collapsed away.
        collapsed = _CollapsedDispatch(self.network, record, consumer, c)
        self.sim.post_in(consult_delay, collapsed.dispatch)


def make_network(engine: str, sim, latency=None) -> Network:
    """The network class for an engine mode, instantiated."""
    if resolve_engine(engine) == "fast":
        return FastNetwork(sim, latency)
    return Network(sim, latency)


def make_mediator(engine: str, *args, **kwargs) -> Mediator:
    """The mediator class for an engine mode, instantiated."""
    if resolve_engine(engine) == "fast":
        return FastMediator(*args, **kwargs)
    return Mediator(*args, **kwargs)
