"""The paper's primary contribution: the SbQA query-allocation process.

Layered exactly as Section III of the paper describes the pipeline:

1. :mod:`repro.core.intentions` -- how participants compute their
   intentions in [-1, 1] (consumer intentions ``CI_q[p]``, provider
   intentions ``PI_q[p]``);
2. :mod:`repro.core.satisfaction` -- the satisfaction model of
   Section II (Equation 1, Definitions 1-2) plus the adequation /
   allocation-satisfaction notions of the companion SQLB paper [12];
3. :mod:`repro.core.knbest` -- the KnBest two-stage provider selection
   [11]: ``k`` random candidates, then the ``kn`` least utilized;
4. :mod:`repro.core.scoring` -- the SQLB score (Definition 3) and the
   ranking vector; :mod:`repro.core.omega` -- the adaptive balance
   parameter (Equation 2);
5. :mod:`repro.core.policy` / :mod:`repro.core.sbqa` -- the pluggable
   allocation-policy interface and the SbQA policy composing 1-4;
6. :mod:`repro.core.mediator` -- the mediator entity: receives queries,
   runs a policy, dispatches work, performs satisfaction bookkeeping,
   and reports to the metrics hub.
"""

from repro.core.satisfaction import (
    ConsumerSatisfactionTracker,
    ProviderSatisfactionTracker,
    adequation,
    allocation_satisfaction,
    consumer_query_satisfaction,
    intention_to_unit,
)
from repro.core.scoring import (
    ScoredProvider,
    rank_providers,
    score_providers_batch,
    sqlb_score,
)
from repro.core.omega import AdaptiveOmega, FixedOmega, OmegaPolicy, adaptive_omega
from repro.core.knbest import KnBestSelector
from repro.core.intentions import (
    ConsumerIntentionModel,
    PreferenceIntentions,
    ReputationBlendIntentions,
    ResponseTimeIntentions,
    ProviderIntentionModel,
    ProviderPreferenceIntentions,
    PreferenceUtilizationIntentions,
    LoadOnlyIntentions,
)
from repro.core.policy import AllocationContext, AllocationDecision, AllocationPolicy
from repro.core.sbqa import SbQAConfig, SbQAPolicy
from repro.core.mediator import Mediator
from repro.core.engine import (
    DEFAULT_ENGINE,
    ENGINE_MODES,
    FastMediator,
    FastNetwork,
    make_mediator,
    make_network,
    resolve_engine,
)

__all__ = [
    "ConsumerSatisfactionTracker",
    "ProviderSatisfactionTracker",
    "consumer_query_satisfaction",
    "adequation",
    "allocation_satisfaction",
    "intention_to_unit",
    "sqlb_score",
    "rank_providers",
    "ScoredProvider",
    "adaptive_omega",
    "OmegaPolicy",
    "AdaptiveOmega",
    "FixedOmega",
    "KnBestSelector",
    "ConsumerIntentionModel",
    "PreferenceIntentions",
    "ReputationBlendIntentions",
    "ResponseTimeIntentions",
    "ProviderIntentionModel",
    "ProviderPreferenceIntentions",
    "PreferenceUtilizationIntentions",
    "LoadOnlyIntentions",
    "AllocationContext",
    "AllocationDecision",
    "AllocationPolicy",
    "SbQAConfig",
    "SbQAPolicy",
    "Mediator",
    "score_providers_batch",
    "DEFAULT_ENGINE",
    "ENGINE_MODES",
    "FastMediator",
    "FastNetwork",
    "make_mediator",
    "make_network",
    "resolve_engine",
]
