"""Structure-of-arrays consultation state for the fused fast-engine kernel.

The fast engine's default mediation kernel (:meth:`repro.core.engine.
FastMediator._mediate_fused`) works in *snapshot ordinals*: every
provider of one registry capability snapshot is addressed by its slot
``s`` in the snapshot tuple, and everything the per-query consultation
needs -- static preference bases, blend weights, saturation horizons,
tracker references, the consumer's intention towards each provider --
lives in preallocated parallel columns indexed by ``s``.  This module
owns those columns and the lazily-materialised allocation record the
kernel emits.

Ownership and invariants
------------------------

* A :class:`ConsultColumns` belongs to one ``(snapshot, consumer,
  topic)`` triple.  The snapshot tuple's *identity* is the validity
  token: the registry keeps the same tuple object between
  membership/online transitions (see
  :meth:`repro.system.registry.SystemRegistry.capable_snapshot`), so
  ``cols.snapshot is snapshot`` is the entire staleness check.  After a
  transition the engine drops the columns and builds fresh ones.
* Ordinal metadata (``pids``, ``slot_of``, ``ranks``) is borrowed from
  the registry's :class:`~repro.system.registry.SnapshotMeta`, shared
  across every consumer consulting the same snapshot.  ``ranks[s]`` is
  the position of ``pids[s]`` in the id-sorted order of the snapshot;
  within one snapshot, comparing ranks is order-isomorphic to comparing
  id strings, which is what lets the kernel break utilization and score
  ties on machine ints while matching the scalar kernels'
  ``participant_id`` tie-breaks bit for bit (asserted by the oracle
  tests).
* Static columns (``pp``, ``betas``, ``horizons``) encode state that
  cannot change while the snapshot lives: preferences never mutate
  after construction, and blend weights and horizons are fixed at
  provider construction.
* The consumer-intention column ``ci`` is the only *dynamic* column.
  Its single invalidation source is
  :meth:`repro.system.consumer.Consumer.observe_response_time` (the
  only mutation site of the reputation EWMA), which adds the moved
  provider id to every registered ``_intention_sinks`` set; the columns
  register their own ``dirty`` set there and refresh exactly the slots
  that moved before the next consultation.

Model support
-------------

Columns can only encode the built-in intention models whose arithmetic
they replicate (checked by *exact* type, so subclasses with overridden
math fall back to the scalar oracle path automatically):

* provider side: :class:`~repro.core.intentions.
  PreferenceUtilizationIntentions` (and its ``LoadOnlyIntentions``
  special case) as ``pp[s] = (1 - beta) * pref`` with the load term
  applied per query; :class:`~repro.core.intentions.
  ProviderPreferenceIntentions` as the degenerate ``pw = 1, beta = 0``
  encoding (``0.0 * load_term`` contributes a signed zero, which is
  bit-safe: every digest-visible value passes through the
  ``(i + 1) / 2`` unit mapping, where ``-0.0`` and ``+0.0`` coincide);
* consumer side: :class:`~repro.core.intentions.
  ReputationBlendIntentions` (and ``ResponseTimeIntentions``) as the
  cached dynamic ``ci`` column; :class:`~repro.core.intentions.
  PreferenceIntentions` as a static ``ci`` column that never needs
  refreshing.

Any other combination makes :meth:`ConsultColumns.build` return an
:class:`UnsupportedColumns` marker and the engine falls back to the
``select_fast`` scalar path -- same decisions, same digests, just
without the fused kernel's constant-factor savings.
"""

from __future__ import annotations

from functools import cached_property
from typing import TYPE_CHECKING, Dict, List

from repro.core.intentions import (
    LoadOnlyIntentions,
    PreferenceIntentions,
    PreferenceUtilizationIntentions,
    ProviderPreferenceIntentions,
    ReputationBlendIntentions,
    ResponseTimeIntentions,
)
from repro.core.sbqa import SbQAPolicy
from repro.system.query import AllocationRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.consumer import Consumer
    from repro.system.provider import Provider
    from repro.system.registry import SnapshotMeta

#: Provider models encoded as (pp, beta) columns.  Exact types only:
#: a subclass may override the blend arithmetic.
PROVIDER_BLEND_TYPES = (PreferenceUtilizationIntentions, LoadOnlyIntentions)

#: Provider models encoded as the degenerate pw=1, beta=0 columns.
PROVIDER_STATIC_TYPES = (ProviderPreferenceIntentions,)

#: Consumer models whose CI column is dynamic (reputation EWMA).
CONSUMER_DYNAMIC_TYPES = (ReputationBlendIntentions, ResponseTimeIntentions)

#: Consumer models whose CI column is static (pure preference).
CONSUMER_STATIC_TYPES = (PreferenceIntentions,)


def fused_policy_supported(policy) -> bool:
    """Whether the fused kernel can stand in for this policy.

    The kernel inlines :class:`~repro.core.sbqa.SbQAPolicy`'s exact
    pipeline (KnBest sample, per-pair omega, Definition-3 scores), so
    it requires that exact policy type with either the adaptive or a
    fixed omega -- which is every omega
    :func:`~repro.core.omega.make_omega_policy` can build, but a custom
    :class:`~repro.core.omega.OmegaPolicy` subclass opts out.
    """
    return type(policy) is SbQAPolicy and (
        policy._omega_adaptive or policy._omega_fixed is not None
    )


class UnsupportedColumns:
    """Marker cached in place of columns for unsupported model mixes.

    Carries the snapshot it was decided against so the engine's
    identity-based staleness check re-evaluates support only after a
    membership/online transition (model mixes are fixed at population
    construction, but a rebuilt snapshot is the natural recheck point).
    """

    __slots__ = ("snapshot",)

    supported = False

    def __init__(self, snapshot) -> None:
        self.snapshot = snapshot

    def detach(self) -> None:
        """No sinks were registered; nothing to unhook."""


class ConsultColumns:
    """Parallel per-slot columns for one (snapshot, consumer, topic).

    See the module docstring for ownership and invariants.  All columns
    are plain Python lists indexed by snapshot ordinal -- the kernel's
    inner loops touch ~``kn`` slots per mediation, where list indexing
    beats array scalarisation.
    """

    __slots__ = (
        "snapshot",
        "consumer",
        "shard",
        "pids",
        "slot_of",
        "ranks",
        "pp",
        "betas",
        "horizons",
        "trackers",
        "ci",
        "dirty",
        "_dynamic_ci",
        "_alpha",
        "_alpha_w",
        "_rt_ref",
    )

    supported = True

    def __init__(
        self,
        snapshot,
        meta: "SnapshotMeta",
        consumer: "Consumer",
        dynamic_ci: bool,
        pp: List[float],
        betas: List[float],
        shard: int = 0,
    ) -> None:
        self.snapshot = snapshot
        self.consumer = consumer
        #: Shard ordinal of the owning mediator (0 outside a
        #: federation).  Columns are per-shard state: each shard's
        #: registry produces its own snapshot tuples, and the ordinal
        #: keeps the engine's column cache keys disjoint across shards.
        self.shard = shard
        self.pids = meta.pids
        self.slot_of = meta.slot_of
        self.ranks = meta.ranks
        self.pp = pp
        self.betas = betas
        self.horizons = [p.saturation_horizon for p in snapshot]
        self.trackers = [p.tracker for p in snapshot]
        self._dynamic_ci = dynamic_ci
        if dynamic_ci:
            model = consumer.intention_model
            self._alpha = model.alpha
            self._alpha_w = 1.0 - model.alpha
            self._rt_ref = consumer.rt_reference
        else:
            self._alpha = 0.0
            self._alpha_w = 1.0
            self._rt_ref = consumer.rt_reference
        self.ci = [self._ci(pid) for pid in self.pids]
        self.dirty: set = set()
        if dynamic_ci:
            consumer._intention_sinks.append(self.dirty)

    @classmethod
    def build(
        cls,
        snapshot,
        meta: "SnapshotMeta",
        consumer: "Consumer",
        topic: str,
        shard: int = 0,
    ):
        """Columns for the triple, or :class:`UnsupportedColumns`.

        Provider support is per provider (mixed populations where every
        member uses a built-in model still qualify); the consumer model
        decides between the dynamic and static CI column.
        """
        consumer_type = type(consumer.intention_model)
        if consumer_type in CONSUMER_DYNAMIC_TYPES:
            dynamic_ci = True
        elif consumer_type in CONSUMER_STATIC_TYPES:
            dynamic_ci = False
        else:
            return UnsupportedColumns(snapshot)

        cid = consumer.participant_id
        pp: List[float] = []
        betas: List[float] = []
        for provider in snapshot:
            provider_type = type(provider.intention_model)
            if provider_type in PROVIDER_BLEND_TYPES:
                beta = provider.intention_model.beta
                preference_weight = 1.0 - beta
            elif provider_type in PROVIDER_STATIC_TYPES:
                beta = 0.0
                preference_weight = 1.0
            else:
                return UnsupportedColumns(snapshot)
            # Provider.preference_for(query), unrolled for a fixed
            # (consumer, topic): per-consumer preference first, then
            # per-topic, then the default.
            if cid in provider.preferences:
                preference = provider.preferences[cid]
            elif topic in provider.topic_preferences:
                preference = provider.topic_preferences[topic]
            else:
                preference = provider.default_preference
            pp.append(preference_weight * preference)
            betas.append(beta)
        return cls(snapshot, meta, consumer, dynamic_ci, pp, betas, shard=shard)

    def _ci(self, pid: str) -> float:
        """CI_q[p] for one provider, matching the model's arithmetic.

        Dynamic form: the exact expression of
        :meth:`ReputationBlendIntentions.intentions` with the weights
        and reference resolved at construction.  Static form:
        ``clamp_intention`` of the raw preference, as
        :meth:`PreferenceIntentions.intentions` computes it.
        """
        consumer = self.consumer
        preference = consumer.preferences.get(pid, consumer.default_preference)
        if self._dynamic_ci:
            ewma = consumer._rt_ewma.get(pid)
            rt_reference = self._rt_ref
            reputation = (
                0.5 if ewma is None else rt_reference / (rt_reference + ewma)
            )
            preference = self._alpha_w * preference + self._alpha * (
                2.0 * reputation - 1.0
            )
        if preference > 1.0:
            return 1.0
        if preference < -1.0:
            return -1.0
        return preference

    def refresh(self) -> None:
        """Recompute the CI slots whose reputation moved since last use."""
        slot_of = self.slot_of
        ci = self.ci
        for pid in self.dirty:
            s = slot_of.get(pid)
            if s is not None:
                ci[s] = self._ci(pid)
        self.dirty.clear()

    def detach(self) -> None:
        """Unhook the dirty set from the consumer (columns retired)."""
        if self._dynamic_ci:
            sinks = self.consumer._intention_sinks
            try:
                sinks.remove(self.dirty)
            except ValueError:  # already detached (defensive)
                pass

    def __repr__(self) -> str:
        return (
            f"ConsultColumns(consumer={self.consumer.participant_id!r}, "
            f"shard={self.shard}, slots={len(self.pids)}, "
            f"dynamic_ci={self._dynamic_ci})"
        )


class LazyAllocationRecord(AllocationRecord):
    """An :class:`AllocationRecord` whose consultation maps materialise
    on first access.

    The fused kernel keeps its whole ranking as rows of
    ``(-score, rank, s, pi, ci, omega)``; the summary layer only ever
    reads scalar record fields (adequation, consultation delay, the
    allocated list), so the five per-provider dicts of the faithful
    record are built lazily from the rows -- and in the *same insertion
    order* as ``SbQAPolicy.select_fast`` builds them (intentions and
    omegas in working-set order, scores in ranking order), so code
    iterating the maps observes identical ordering on either path.
    """

    def __init__(
        self,
        query,
        decided_at: float,
        allocated: List["Provider"],
        adequation: float,
        consultation_delay: float,
        rows: List[tuple],
        informed_ordinals: List[int],
        pids: List[str],
        providers,
    ) -> None:
        self.query = query
        self.decided_at = decided_at
        self.allocated = allocated
        self.adequation = adequation
        self.consultation_delay = consultation_delay
        self.results = []
        self.completed_at = None
        self._rows = rows
        self._informed_ordinals = informed_ordinals
        self._pids = pids
        self._providers = providers

    @cached_property
    def _row_of(self) -> Dict[int, tuple]:
        return {row[2]: row for row in self._rows}

    @cached_property
    def informed(self) -> List["Provider"]:
        providers = self._providers
        return [providers[s] for s in self._informed_ordinals]

    @cached_property
    def consumer_intentions(self) -> Dict[str, float]:
        pids = self._pids
        row_of = self._row_of
        return {pids[s]: row_of[s][4] for s in self._informed_ordinals}

    @cached_property
    def provider_intentions(self) -> Dict[str, float]:
        pids = self._pids
        row_of = self._row_of
        return {pids[s]: row_of[s][3] for s in self._informed_ordinals}

    @cached_property
    def scores(self) -> Dict[str, float]:
        # IEEE negation is exact, so -(-score) restores the kernel's
        # score bit for bit.
        pids = self._pids
        return {pids[row[2]]: -row[0] for row in self._rows}

    @cached_property
    def omegas(self) -> Dict[str, float]:
        pids = self._pids
        row_of = self._row_of
        return {pids[s]: row_of[s][5] for s in self._informed_ordinals}
