"""The SbQA allocation policy: KnBest + SQLB (Section III).

Given an incoming query ``q`` and the capable set ``P_q``:

1. **KnBest stage 1** -- select ``K``, ``k`` providers at random from
   ``P_q``;
2. **KnBest stage 2** -- keep ``Kn``, the ``kn`` least utilized of
   ``K``;
3. **SQLB** -- ask the consumer ``q.c`` for its intentions towards each
   provider of ``Kn`` and each provider of ``Kn`` for its intention to
   perform ``q``;
4. score every ``p`` in ``Kn`` (Definition 3) under the balance
   ``omega`` (Equation 2: per-pair, satisfaction-adaptive), rank, and
5. allocate ``q`` to the ``min(q.n, kn)`` best-scored providers; all of
   ``Kn`` learn the outcome (they were "informed"), which feeds the
   provider-side satisfaction window.

The intention consultation is what makes the process *self-adaptable*:
participants re-express intentions per query from their current state
(preferences, load, observed performance), and omega continuously
rebalances whose voice counts more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.knbest import KnBestSelector
from repro.core.omega import AdaptiveOmega, FixedOmega, OmegaPolicy, make_omega_policy
from repro.core.policy import (
    AllocationContext,
    AllocationDecision,
    AllocationPolicy,
    FastAllocationDecision,
    allocation_count,
)
from repro.core.scoring import (
    DEFAULT_EPSILON,
    ScoredProvider,
    rank_providers,
    score_providers_batch,
    sqlb_score,
)
from repro.des.rng import RandomStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.provider import Provider
    from repro.system.query import Query


def _rank_key(row):
    """Sort key matching :func:`~repro.core.scoring.rank_providers`."""
    return (-row[0], row[1])


@dataclass
class SbQAConfig:
    """Tunable parameters of the SbQA process (decision D4).

    Attributes
    ----------
    k:
        KnBest stage-1 sample size.
    kn:
        KnBest stage-2 working-set size (providers consulted per query).
    epsilon:
        Guard of the negative scoring branch; the paper sets it to 1.
    omega:
        ``"adaptive"`` for Equation 2, or a float in [0, 1] to pin the
        balance (Scenario 6).
    """

    k: int = 20
    kn: int = 10
    epsilon: float = DEFAULT_EPSILON
    omega: object = "adaptive"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not 1 <= self.kn <= self.k:
            raise ValueError(f"kn must satisfy 1 <= kn <= k, got kn={self.kn}, k={self.k}")
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")


class SbQAPolicy(AllocationPolicy):
    """Satisfaction-based Query Allocation.

    Parameters
    ----------
    config:
        The (k, kn, epsilon, omega) tuple; defaults to the library
        defaults of :class:`SbQAConfig`.
    stream:
        Seeded random stream feeding KnBest stage 1.
    """

    name = "sbqa"
    consults_participants = True

    def __init__(self, config: Optional[SbQAConfig], stream: RandomStream) -> None:
        self.config = config or SbQAConfig()
        self.selector = KnBestSelector(self.config.k, self.config.kn, stream)
        self.omega_policy: OmegaPolicy = make_omega_policy(self.config.omega)
        # Resolved once so the hot path dispatches on plain attributes
        # instead of per-query isinstance checks.
        self._omega_adaptive = isinstance(self.omega_policy, AdaptiveOmega)
        self._omega_fixed = (
            self.omega_policy.value
            if isinstance(self.omega_policy, FixedOmega)
            else None
        )

    def select(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        consumer = query.consumer
        selection = self.selector.select(candidates)
        working = list(selection.working)
        if ctx.trace.enabled:
            ctx.trace.record(
                ctx.now,
                "knbest",
                f"query {query.qid}: |P_q|={len(candidates)} -> |K|={selection.k_effective} "
                f"-> |Kn|={selection.kn_effective}",
                qid=query.qid,
            )

        consumer_satisfaction = consumer.satisfaction
        scored = []
        consumer_intentions = {}
        provider_intentions = {}
        omegas = {}
        for provider in working:
            pid = provider.participant_id
            provider_intention = provider.intention_for(query)
            consumer_intention = consumer.intention_for(query, provider)
            omega = self.omega_policy.omega(consumer_satisfaction, provider.satisfaction)
            score = sqlb_score(
                provider_intention, consumer_intention, omega, self.config.epsilon
            )
            scored.append(
                ScoredProvider(
                    provider_id=pid,
                    score=score,
                    omega=omega,
                    provider_intention=provider_intention,
                    consumer_intention=consumer_intention,
                )
            )
            consumer_intentions[pid] = consumer_intention
            provider_intentions[pid] = provider_intention
            omegas[pid] = omega

        ranking = rank_providers(scored)
        take = allocation_count(query, len(working))
        by_id = {p.participant_id: p for p in working}
        allocated = [by_id[entry.provider_id] for entry in ranking[:take]]
        if ctx.trace.enabled:
            chosen_ids = {entry.provider_id for entry in ranking[:take]}
            ctx.trace.record(
                ctx.now,
                "sqlb",
                f"query {query.qid}: ranked {[e.provider_id for e in ranking]}, "
                f"allocated {sorted(chosen_ids)}",
                qid=query.qid,
            )

        return AllocationDecision(
            allocated=allocated,
            informed=working,
            consumer_intentions=consumer_intentions,
            provider_intentions=provider_intentions,
            scores={entry.provider_id: entry.score for entry in ranking},
            omegas=omegas,
            # one intention request + one reply per consulted provider,
            # plus the same exchange with the consumer
            consult_messages=2 * len(working) + 2,
            metadata={"k_effective": selection.k_effective},
        )

    def select_fast(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        """Hot-path :meth:`select`: identical decision, fewer allocations.

        Used by the fast engine (:mod:`repro.core.engine`) when tracing
        is off.  The pipeline is the same -- KnBest sample, intention
        consultation, per-pair omega, Definition-3 scores, rank, take
        ``min(n, kn)`` -- but the whole ``Kn`` set is scored through
        :func:`~repro.core.scoring.score_providers_batch` (inputs
        validated once), per-provider ``ScoredProvider`` objects are
        never materialised, and a fixed omega is resolved outside the
        loop.  Every float is produced by the same expressions in the
        same order as :meth:`select`, so allocations, scores and omegas
        are bit-identical.
        """
        consumer = query.consumer
        k_effective, working, loads = self.selector.sample_working(candidates)
        pids = [provider.participant_id for provider in working]

        # -- intention consultation (batched when the set shares one
        #    model instance, which the population builder guarantees) --
        shared_model = working[0].intention_model
        for provider in working:
            if provider.intention_model is not shared_model:
                shared_model = None
                break
        if shared_model is not None:
            provider_intention_list = shared_model.intentions(
                working, query, utilizations=loads
            )
        else:
            provider_intention_list = [p.intention_for(query) for p in working]
        consumer_intention_list = consumer.intention_model.intentions(
            consumer, query, working
        )

        # -- Equation 2, one omega per (c, p) pair -----------------------
        if self._omega_adaptive:
            # Inlined adaptive_omega; trackers guarantee inputs in [0, 1].
            consumer_satisfaction = consumer.satisfaction
            omega_list = [
                ((consumer_satisfaction - p.tracker.satisfaction()) + 1.0) / 2.0
                for p in working
            ]
        elif self._omega_fixed is not None:
            omega_list = [self._omega_fixed] * len(working)
        else:
            consumer_satisfaction = consumer.satisfaction
            omega_policy = self.omega_policy
            omega_list = [
                omega_policy.omega(consumer_satisfaction, p.satisfaction)
                for p in working
            ]

        # backend pinned to the python loop: it is the only backend
        # guaranteed bit-identical to the scalar kernel select() uses,
        # and the engine parity contract must not hinge on the
        # SBQA_SCORING_BACKEND environment.
        scores = score_providers_batch(
            provider_intention_list,
            consumer_intention_list,
            omega_list,
            self.config.epsilon,
            backend="python",
            validate=False,
        )

        # rank_providers orders by (-score, provider_id); same key here.
        ranking = sorted(zip(scores, pids), key=_rank_key)
        take = allocation_count(query, len(working))
        by_id = dict(zip(pids, working))
        allocated = [by_id[pid] for _, pid in ranking[:take]]

        return FastAllocationDecision(
            allocated=allocated,
            informed=working,
            consumer_intentions=dict(zip(pids, consumer_intention_list)),
            provider_intentions=dict(zip(pids, provider_intention_list)),
            scores={pid: score for score, pid in ranking},
            omegas=dict(zip(pids, omega_list)),
            consult_messages=2 * len(working) + 2,
            metadata={"k_effective": k_effective},
        )

    def describe(self) -> dict:
        return {
            "name": self.name,
            "k": self.config.k,
            "kn": self.config.kn,
            "epsilon": self.config.epsilon,
            "omega": repr(self.omega_policy),
        }
