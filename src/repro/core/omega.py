"""The balance parameter omega (Equation 2).

``omega`` decides whose intention dominates the SQLB score
(Definition 3): ``omega = 1`` listens only to providers, ``omega = 0``
only to consumers.  SbQA's headline idea is to make it *adaptive*::

    omega = ((delta_s(c) - delta_s(p)) + 1) / 2

i.e. the mediator compares the long-run satisfaction of the consumer
and of the provider at hand: if the consumer is currently the happier
side, omega rises and the provider's intention gains weight -- the
allocation process dynamically trades consumers' interests for
providers' interests "to be fair" (Section I).

Applications can instead pin omega (Scenario 6): cooperative-provider
deployments that only care about result quality set it near 0.
"""

from __future__ import annotations


def adaptive_omega(consumer_satisfaction: float, provider_satisfaction: float) -> float:
    """Equation 2: omega from the satisfaction gap of the (c, p) pair.

    Both inputs live in [0, 1], so the gap lies in [-1, 1] and the
    result in [0, 1]; no clamping is needed for valid inputs, and
    invalid inputs raise.
    """
    if not 0.0 <= consumer_satisfaction <= 1.0:
        raise ValueError(
            f"consumer satisfaction must be in [0, 1], got {consumer_satisfaction}"
        )
    if not 0.0 <= provider_satisfaction <= 1.0:
        raise ValueError(
            f"provider satisfaction must be in [0, 1], got {provider_satisfaction}"
        )
    return ((consumer_satisfaction - provider_satisfaction) + 1.0) / 2.0


class OmegaPolicy:
    """Strategy: produce the omega used to score one (consumer, provider) pair."""

    def omega(self, consumer_satisfaction: float, provider_satisfaction: float) -> float:
        raise NotImplementedError

    @property
    def is_adaptive(self) -> bool:
        """True when omega reacts to satisfaction (Equation 2)."""
        return False


class AdaptiveOmega(OmegaPolicy):
    """Equation 2 -- the SbQA default."""

    def omega(self, consumer_satisfaction: float, provider_satisfaction: float) -> float:
        return adaptive_omega(consumer_satisfaction, provider_satisfaction)

    @property
    def is_adaptive(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "AdaptiveOmega()"


class FixedOmega(OmegaPolicy):
    """A constant omega, for application-tuned deployments (Scenario 6)."""

    def __init__(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"omega must be in [0, 1], got {value}")
        self.value = float(value)

    def omega(self, consumer_satisfaction: float, provider_satisfaction: float) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"FixedOmega({self.value})"


def make_omega_policy(spec) -> OmegaPolicy:
    """Coerce a config value into an :class:`OmegaPolicy`.

    Accepts an existing policy, the string ``"adaptive"``, or a number
    in [0, 1].  This keeps experiment configs plain data (decision D4).
    """
    if isinstance(spec, OmegaPolicy):
        return spec
    if isinstance(spec, str):
        if spec.lower() == "adaptive":
            return AdaptiveOmega()
        raise ValueError(f"unknown omega policy spec {spec!r}")
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        return FixedOmega(float(spec))
    raise TypeError(f"cannot build an omega policy from {spec!r}")
