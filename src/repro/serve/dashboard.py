"""Rolling-satisfaction ASCII dashboard for the serving mode.

The demo prototype's "drawing results on-line" window, as text: a
sparkline of the sampled consumer-satisfaction series, the live
counters, per-consumer satisfaction bars and the admission accounting.
Rendered from a :meth:`~repro.serve.engine.ServeEngine.metrics_snapshot`
plus the hub's satisfaction series, so ``GET /dashboard`` and the
terminal ticker share one code path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Sparkline ramp, lowest to highest.
_SPARK = " .:-=+*#%@"

#: Width of the satisfaction bars.
_BAR_WIDTH = 24


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Map ``values`` in [0, 1] onto one line of density characters
    (most recent ``width`` samples)."""
    if not values:
        return "(no samples yet)"
    tail = list(values)[-width:]
    steps = len(_SPARK) - 1
    out = []
    for v in tail:
        clamped = 0.0 if v < 0.0 else (1.0 if v > 1.0 else v)
        out.append(_SPARK[round(clamped * steps)])
    return "".join(out)


def bar(value: float, width: int = _BAR_WIDTH) -> str:
    """A ``[####....]`` gauge of a value in [0, 1]."""
    clamped = 0.0 if value < 0.0 else (1.0 if value > 1.0 else value)
    filled = round(clamped * width)
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _fmt(value: Optional[float], digits: int = 3) -> str:
    return "-" if value is None else f"{value:.{digits}g}"


def render_dashboard(
    snapshot: Dict[str, object],
    satisfaction_history: Sequence[float] = (),
    per_consumer: Sequence[Tuple[str, float]] = (),
    width: int = 60,
) -> str:
    """The dashboard as one multi-line string.

    ``snapshot`` is a :meth:`ServeEngine.metrics_snapshot` document;
    ``satisfaction_history`` the sampled consumer-satisfaction values
    (``hub.consumer_satisfaction.values``); ``per_consumer`` optional
    ``(consumer_id, satisfaction)`` rows.
    """
    queries = snapshot.get("queries", {})
    sat = snapshot.get("satisfaction", {})
    admission = snapshot.get("admission", {})
    latency = snapshot.get("latency", {})
    rt = latency.get("response_time", {}) if isinstance(latency, dict) else {}

    lines: List[str] = []
    lines.append(
        f"sbqa serve :: policy={snapshot.get('policy', '?')}  "
        f"t={_fmt(snapshot.get('sim_time'), 6)}s / "
        f"{_fmt(snapshot.get('horizon'), 6)}s  backlog={snapshot.get('backlog', 0)}"
    )
    lines.append(
        f"queries    issued={queries.get('issued', 0)}  "
        f"completed={queries.get('completed', 0)}  "
        f"failed={queries.get('failed', 0)}  "
        f"timed_out={queries.get('timed_out', 0)}"
    )
    lines.append(
        f"latency    rt p50={_fmt(rt.get('p50'))}s  p95={_fmt(rt.get('p95'))}s  "
        f"p99={_fmt(rt.get('p99'))}s"
    )
    lines.append(
        f"admission  submitted={admission.get('submitted', 0)}  "
        f"admitted={admission.get('admitted', 0)}  "
        f"dropped={admission.get('dropped', 0)}"
    )
    reasons = admission.get("by_reason") if isinstance(admission, dict) else None
    if reasons:
        detail = "  ".join(f"{reason}={count}" for reason, count in reasons.items())
        lines.append(f"           {detail}")
    consumer_now = sat.get("consumer_now")
    if consumer_now is not None:
        lines.append(
            f"satisfaction (consumers) {bar(consumer_now)} {_fmt(consumer_now)}"
        )
    shards = snapshot.get("shards")
    if shards:
        lines.append("shards     " + "  ".join(
            f"s{row.get('shard')}: q={row.get('queue_depth', 0)}"
            f" m={row.get('mediations', 0)}"
            f" fwd={row.get('forwarded', 0)}"
            for row in shards
        ))
    lines.append("rolling satisfaction:")
    lines.append("  " + sparkline(satisfaction_history, width=width))
    for consumer_id, value in per_consumer:
        lines.append(f"  {consumer_id:<12} {bar(value)} {_fmt(value)}")
    return "\n".join(lines) + "\n"
