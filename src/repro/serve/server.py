"""The asyncio front-end of ``sbqa serve``.

One :class:`ServeServer` owns a :class:`~repro.serve.engine.ServeEngine`
and exposes it three ways, all on one event loop:

* **HTTP** (hand-rolled over ``asyncio.start_server`` -- the toolchain
  has no web framework and does not need one for four endpoints):
  ``POST /submit`` offers a query, ``GET /metrics`` returns the JSON
  snapshot, ``GET /dashboard`` the ASCII view, ``GET /healthz`` a
  liveness probe;
* **stdin JSONL**: one submission object per line, for piping
  workload generators straight into the server;
* **trace streaming**: a :class:`~repro.workloads.traces.TraceSpec`
  whose arrivals are fed open-loop as the wall clock reaches them.

A ticker maps wall-clock onto simulation time (``speed`` simulation
seconds per wall second) and drives ``LiveRun.step_until``
incrementally.  SIGTERM/SIGINT trigger a graceful shutdown: the ticker
stops, the listener closes, and the final summary-so-far (with its
digest and the admission accounting) is flushed as one JSON document.

Startup prints ``SERVE_READY port=<n>`` on stdout so harnesses binding
port 0 can discover the ephemeral port.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.serve.dashboard import render_dashboard
from repro.serve.engine import ServeEngine
from repro.workloads.traces import TraceArrival, TraceSpec

#: Maximum accepted request body (bytes); submissions are tiny.
MAX_BODY = 65536

#: Fields a ``POST /submit`` (or stdin JSONL) object may carry.
SUBMIT_FIELDS = frozenset(
    {"consumer_id", "service_demand", "topic", "n_results", "quorum", "at"}
)


def parse_submission(data: Any) -> Dict[str, Any]:
    """Validate one submission object; returns ``submit()`` kwargs."""
    if not isinstance(data, dict):
        raise ValueError(f"submission must be a JSON object, got {type(data).__name__}")
    unknown = sorted(set(data) - SUBMIT_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown submission field(s): {', '.join(unknown)}. "
            f"Valid fields: {', '.join(sorted(SUBMIT_FIELDS))}"
        )
    if "consumer_id" not in data:
        raise ValueError("submission needs a 'consumer_id'")
    return dict(data)


class ServeServer:
    """The serving loop: ticker + HTTP + optional stdin/trace feeds.

    Parameters
    ----------
    engine:
        The wired :class:`ServeEngine`.
    host, port:
        HTTP bind address; port 0 picks an ephemeral port (printed as
        ``SERVE_READY port=<n>``).  ``port=None`` disables HTTP.
    speed:
        Simulation seconds advanced per wall-clock second.
    tick_interval:
        Wall seconds between ticker advances.
    trace:
        Optional trace streamed open-loop: each arrival is submitted
        when the mapped simulation time reaches its instant.
    read_stdin:
        Accept JSONL submissions on stdin.
    exit_when_done:
        Stop once the horizon is reached and all feeds are drained
        (how trace-driven smoke runs terminate on their own).
    out:
        Stream for the readiness line and the final flush (stdout).
    """

    def __init__(
        self,
        engine: ServeEngine,
        host: str = "127.0.0.1",
        port: Optional[int] = 0,
        speed: float = 1.0,
        tick_interval: float = 0.05,
        trace: Optional[TraceSpec] = None,
        read_stdin: bool = False,
        exit_when_done: bool = False,
        out: Optional[TextIO] = None,
    ) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        if tick_interval <= 0:
            raise ValueError(f"tick_interval must be positive, got {tick_interval}")
        self.engine = engine
        self.host = host
        self.port = port
        self.speed = float(speed)
        self.tick_interval = float(tick_interval)
        self.read_stdin = read_stdin
        self.exit_when_done = exit_when_done
        self.out = out if out is not None else sys.stdout
        self.bound_port: Optional[int] = None
        self.final_payload: Optional[Dict[str, Any]] = None
        self._arrivals: Tuple[TraceArrival, ...] = ()
        if trace is not None:
            self._arrivals = trace.materialize(
                consumer_ids=engine.consumer_ids()
            )
        self._next_arrival = 0
        self._stop = asyncio.Event()
        self._submit_errors = 0

    # ------------------------------------------------------------------
    # Feeds
    # ------------------------------------------------------------------

    def _submit(self, kwargs: Dict[str, Any]) -> Tuple[bool, Optional[str]]:
        consumer_id = kwargs.pop("consumer_id")
        return self.engine.submit(consumer_id, **kwargs)

    def _feed_trace(self, target: float) -> None:
        """Submit every trace arrival whose instant the clock reached."""
        arrivals = self._arrivals
        while self._next_arrival < len(arrivals):
            arrival = arrivals[self._next_arrival]
            if arrival.time > target:
                break
            self.engine.submit(
                arrival.consumer_id,
                service_demand=arrival.service_demand,
                topic=arrival.topic,
                n_results=arrival.n_results,
                quorum=arrival.quorum,
                at=arrival.time,
            )
            self._next_arrival += 1

    async def _ticker(self) -> None:
        loop = asyncio.get_running_loop()
        start = loop.time()
        while not self._stop.is_set():
            await asyncio.sleep(self.tick_interval)
            target = min((loop.time() - start) * self.speed, self.engine.horizon)
            self._feed_trace(target)
            self.engine.advance_to(target)
            if (
                self.exit_when_done
                and self.engine.finished
                and self._next_arrival >= len(self._arrivals)
                and self.engine.backlog == 0
            ):
                self._stop.set()

    async def _stdin_feed(self) -> None:
        loop = asyncio.get_running_loop()
        stdin = sys.stdin
        while not self._stop.is_set():
            line = await loop.run_in_executor(None, stdin.readline)
            if not line:  # EOF: the producer is done
                if self.exit_when_done and not self._arrivals:
                    self._stop.set()
                return
            line = line.strip()
            if not line:
                continue
            try:
                self._submit(parse_submission(json.loads(line)))
            except (ValueError, TypeError):
                self._submit_errors += 1

    # ------------------------------------------------------------------
    # HTTP
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            status, content_type, payload = self._route(method, path, body)
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("ascii")
                + payload
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer reset
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _ = request_line.decode("ascii").split(" ", 2)
        except ValueError:
            return None
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = min(int(value.strip()), MAX_BODY)
                except ValueError:
                    content_length = 0
        body = await reader.readexactly(content_length) if content_length else b""
        return method.upper(), path, body

    def _route(self, method: str, path: str, body: bytes) -> Tuple[str, str, bytes]:
        path = path.split("?", 1)[0]
        if method == "GET" and path == "/metrics":
            return self._json_response("200 OK", self.engine.metrics_snapshot())
        if method == "GET" and path == "/dashboard":
            hub = self.engine.live.hub
            per_consumer = [
                (c.participant_id, c.satisfaction)
                for c in self.engine.live.population.consumers
            ]
            text = render_dashboard(
                self.engine.metrics_snapshot(),
                hub.consumer_satisfaction.values,
                per_consumer,
            )
            return "200 OK", "text/plain; charset=utf-8", text.encode("utf-8")
        if method == "GET" and path == "/healthz":
            return self._json_response(
                "200 OK", {"ok": True, "sim_time": self.engine.now}
            )
        if method == "POST" and path == "/submit":
            try:
                kwargs = parse_submission(json.loads(body.decode("utf-8")))
            except (ValueError, TypeError, UnicodeDecodeError) as exc:
                return self._json_response("400 Bad Request", {"error": str(exc)})
            accepted, reason = self._submit(kwargs)
            return self._json_response(
                "200 OK" if accepted else "429 Too Many Requests",
                {"accepted": accepted, "reason": reason, "sim_time": self.engine.now},
            )
        return self._json_response(
            "404 Not Found", {"error": f"no route {method} {path}"}
        )

    @staticmethod
    def _json_response(status: str, payload: Dict[str, Any]) -> Tuple[str, str, bytes]:
        return (
            status,
            "application/json",
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the loop to shut down gracefully (signal handlers)."""
        self._stop.set()

    async def serve(self) -> Dict[str, Any]:
        """Run until stopped; returns (and flushes) the final payload."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

        server = None
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port
            )
            self.bound_port = server.sockets[0].getsockname()[1]
        self.out.write(f"SERVE_READY port={self.bound_port or 0}\n")
        self.out.flush()

        tasks = [asyncio.ensure_future(self._ticker())]
        if self.read_stdin:
            tasks.append(asyncio.ensure_future(self._stdin_feed()))

        try:
            await self._stop.wait()
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            if server is not None:
                server.close()
                await server.wait_closed()

        # the graceful flush: summary-so-far, digest, drop accounting
        self.final_payload = self.engine.final_payload()
        self.final_payload["submit_errors"] = self._submit_errors
        self.out.write(
            "SERVE_FINAL " + json.dumps(self.final_payload, sort_keys=True) + "\n"
        )
        self.out.flush()
        return self.final_payload

    def run(self) -> Dict[str, Any]:
        """Blocking entry point (the CLI's)."""
        return asyncio.run(self.serve())
