"""The long-lived serving mode: ``sbqa serve``.

Everything else in this repository runs *closed* experiments -- wire a
run, execute to a horizon, report.  This package keeps one wired run
**open**: queries arrive from outside (an HTTP endpoint, a JSONL
stream, or a trace replayed open-loop), wall-clock time is mapped onto
simulation time, and the mediator's state can be observed while it
serves.

* :mod:`repro.serve.admission` -- bounded ingress with explicit drop
  accounting: queue capacity, shed policy (drop-newest / drop-oldest)
  and per-consumer token-bucket rate limits;
* :mod:`repro.serve.engine` -- :class:`ServeEngine`, the bridge between
  an open ingress and the batch kernel's :class:`~repro.experiments.
  runner.LiveRun`: per-consumer injection chains that mirror trace
  replay exactly, so an open-loop replay of a recorded trace reproduces
  the batch digest bit-for-bit;
* :mod:`repro.serve.dashboard` -- the rolling-satisfaction ASCII view;
* :mod:`repro.serve.server` -- the asyncio front-end (HTTP ``POST
  /submit`` / ``GET /metrics`` / ``GET /dashboard``, stdin JSONL mode,
  graceful SIGTERM draining).
"""

from repro.serve.admission import AdmissionConfig, AdmissionController, DropStats
from repro.serve.engine import ServeEngine, ServeMetrics
from repro.serve.dashboard import render_dashboard

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "DropStats",
    "ServeEngine",
    "ServeMetrics",
    "render_dashboard",
]
