"""Ingress admission control for the serving mode.

A long-lived server cannot assume the well-behaved closed-loop sources
of the batch experiments: traffic may exceed what the provider pool can
absorb, one consumer may flood out the others, and an unbounded backlog
would just convert overload into unbounded latency.  This module makes
the overload behaviour explicit and *accounted*:

* a bounded ingress queue (``queue_capacity``) with a shed policy --
  ``drop-newest`` rejects the incoming query, ``drop-oldest`` evicts
  the longest-waiting pending query to make room;
* per-consumer token-bucket rate limits clocked on **simulation**
  arrival time, so admission decisions are deterministic and
  replayable (wall-clock never enters the decision);
* :class:`DropStats`: every drop is counted by reason and by consumer,
  and surfaced through ``/metrics`` -- the serving mode never sheds
  silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Shed policies of a full ingress queue.
SHED_POLICIES = ("drop-newest", "drop-oldest")

#: Drop reasons reported by :class:`DropStats`.
REASON_QUEUE_FULL = "queue-full"
REASON_RATE_LIMITED = "rate-limited"
REASON_UNKNOWN_CONSUMER = "unknown-consumer"
REASON_PAST_HORIZON = "past-horizon"
REASON_CONSUMER_OFFLINE = "consumer-offline"
REASON_SHED_OLDEST = "shed-oldest"


@dataclass(frozen=True)
class AdmissionConfig:
    """Ingress limits of one serving session.

    The defaults admit everything -- unbounded queue, no rate limit --
    which is also what open-loop trace replay requires for digest
    parity (an admission drop would change the workload the mediator
    sees).
    """

    #: Maximum pending (admitted but not yet issued) queries across all
    #: consumers; ``None`` = unbounded.
    queue_capacity: Optional[int] = None
    #: What to do when the queue is full: reject the incoming query
    #: (``drop-newest``) or evict the longest-waiting pending one
    #: (``drop-oldest``).
    shed_policy: str = "drop-newest"
    #: Sustained per-consumer admission rate (queries/second of
    #: simulation time); ``None`` = unlimited.
    rate_limit: Optional[float] = None
    #: Token-bucket depth of the rate limiter: how many queries one
    #: consumer may burst above the sustained rate.
    burst: float = 10.0

    def __post_init__(self) -> None:
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1 or None, got {self.queue_capacity}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r}; valid: "
                f"{', '.join(SHED_POLICIES)}"
            )
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError(f"rate_limit must be positive, got {self.rate_limit}")
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {self.burst}")


@dataclass
class DropStats:
    """Explicit accounting of everything the ingress did not serve."""

    submitted: int = 0
    admitted: int = 0
    dropped: int = 0
    by_reason: Dict[str, int] = field(default_factory=dict)
    by_consumer: Dict[str, int] = field(default_factory=dict)

    def record_drop(self, consumer_id: str, reason: str) -> None:
        self.dropped += 1
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1
        self.by_consumer[consumer_id] = self.by_consumer.get(consumer_id, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        """JSON view for ``/metrics``."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "dropped": self.dropped,
            "by_reason": dict(sorted(self.by_reason.items())),
            "by_consumer": dict(sorted(self.by_consumer.items())),
        }


class _TokenBucket:
    """One consumer's rate limiter, clocked on simulation time."""

    __slots__ = ("tokens", "last")

    def __init__(self, burst: float, now: float) -> None:
        self.tokens = burst
        self.last = now

    def try_take(self, now: float, rate: float, burst: float) -> bool:
        if now > self.last:
            self.tokens = min(burst, self.tokens + rate * (now - self.last))
            self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Applies an :class:`AdmissionConfig` to a stream of submissions.

    The controller owns the *decision* only; the serve engine owns the
    pending queues, tells the controller the current backlog, and
    executes evictions when the verdict is ``drop-oldest``.
    """

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.stats = DropStats()
        self._buckets: Dict[str, _TokenBucket] = {}

    def decide(
        self, consumer_id: str, sim_time: float, backlog: int
    ) -> Tuple[str, Optional[str]]:
        """One admission decision.

        Returns ``(verdict, reason)`` where verdict is ``"admit"``,
        ``"drop"`` (reason says why), or ``"evict-oldest"`` -- admit
        this query *after* the engine evicts the longest-waiting
        pending one.  Counting of the submission happens here; counting
        of the drop is the caller's job via :meth:`drop` (the eviction
        verdict drops a different query than the one submitted).
        """
        self.stats.submitted += 1
        limit = self.config.rate_limit
        if limit is not None:
            bucket = self._buckets.get(consumer_id)
            if bucket is None:
                bucket = self._buckets[consumer_id] = _TokenBucket(
                    self.config.burst, sim_time
                )
            if not bucket.try_take(sim_time, limit, self.config.burst):
                return "drop", REASON_RATE_LIMITED
        capacity = self.config.queue_capacity
        if capacity is not None and backlog >= capacity:
            if self.config.shed_policy == "drop-oldest":
                return "evict-oldest", None
            return "drop", REASON_QUEUE_FULL
        return "admit", None

    def admit(self) -> None:
        """Record one admitted query (after queue insertion succeeded)."""
        self.stats.admitted += 1

    def drop(self, consumer_id: str, reason: str) -> None:
        """Record one dropped query with its reason."""
        self.stats.record_drop(consumer_id, reason)

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"AdmissionController(submitted={s.submitted}, admitted={s.admitted}, "
            f"dropped={s.dropped})"
        )
