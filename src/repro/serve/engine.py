"""The serving engine: one wired simulation run held open for ingress.

:class:`ServeEngine` assembles the exact same run the batch layer
assembles (``wire_run`` with population, mediation, autonomy and
measurement all identical) but replaces the closed-loop workload with
**per-consumer injection chains** fed by :meth:`ServeEngine.submit`.
The chains mirror :class:`~repro.workloads.traces.TraceReplayProcess`
event-for-event -- fire issues the head query first, then schedules the
successor -- so replaying a recorded trace through the serve path
(:meth:`ServeEngine.replay`) reproduces the batch engine's allocation
digest bit-for-bit.  That parity is the serving mode's correctness
anchor: if the open-loop path agrees with the event-faithful batch core
on every recorded workload, the only untested surface is admission
itself, which is deterministic and unit-tested.

Time is decoupled from the wall: the front-end maps elapsed wall-clock
onto simulation time with a speed factor (:meth:`advance_wall`), while
tests and replays drive :meth:`advance_to` directly.  All admission
decisions are clocked on *simulation* time, so a serving session is
replayable in principle and never depends on host scheduling jitter.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import LiveRun, RunResult, WorkloadInstaller, wire_run
from repro.metrics.series import QuantileSet
from repro.metrics.summary import RunSummary, build_summary, summary_digest, summary_payload
from repro.serve.admission import (
    REASON_CONSUMER_OFFLINE,
    REASON_PAST_HORIZON,
    REASON_SHED_OLDEST,
    REASON_UNKNOWN_CONSUMER,
    AdmissionConfig,
    AdmissionController,
)
from repro.workloads.traces import TraceSpec


class _Injection:
    """One admitted query waiting in an injection chain."""

    __slots__ = ("time", "topic", "service_demand", "n_results", "quorum", "seq")

    def __init__(
        self,
        time: float,
        topic: str,
        service_demand: float,
        n_results: Optional[int],
        quorum: Optional[int],
        seq: int,
    ) -> None:
        self.time = time
        self.topic = topic
        self.service_demand = service_demand
        self.n_results = n_results
        self.quorum = quorum
        self.seq = seq


class _Chain:
    """One consumer's pending injections plus its scheduled head event."""

    __slots__ = ("consumer", "pending", "handle")

    def __init__(self, consumer) -> None:
        self.consumer = consumer
        self.pending: Deque[_Injection] = deque()
        self.handle = None


class _OpenIngress(WorkloadInstaller):
    """Workload installer that wires nothing: arrivals come from outside."""

    def install(self, sim, population, config, root) -> None:
        pass


class ServeMetrics:
    """Streaming latency accumulators of one serving session.

    Constant memory (P² quantiles) because a serving session has no
    horizon to bound the sample lists the batch hub keeps.
    """

    def __init__(self) -> None:
        #: Consumer-perceived response time of completed queries.
        self.response_time = QuantileSet("response_time")
        #: Simulation-time delay between a query's requested arrival
        #: instant and the moment its chain actually issued it (backlog
        #: wait; 0 when the chain was idle).
        self.ingress_delay = QuantileSet("ingress_delay")

    def snapshot(self) -> Dict[str, object]:
        return {
            "response_time": self.response_time.snapshot(),
            "ingress_delay": self.ingress_delay.snapshot(),
        }


class ServeEngine:
    """An open simulation run: submit queries, advance time, observe.

    Parameters
    ----------
    config, policy_spec, replication:
        Exactly what :func:`~repro.experiments.runner.wire_run` takes;
        ``config.duration`` is the serving horizon.
    admission:
        Ingress limits; defaults to admit-everything, which is what
        digest-parity replay requires.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        policy_spec: PolicySpec,
        admission: Optional[AdmissionConfig] = None,
        replication: int = 0,
    ) -> None:
        self.config = config
        self.policy_spec = policy_spec
        self.admission = AdmissionController(admission or AdmissionConfig())
        self.metrics = ServeMetrics()
        self.live: LiveRun = wire_run(
            config, policy_spec, replication=replication, workload=_OpenIngress()
        )
        self.sim = self.live.sim
        self._chains: Dict[str, _Chain] = {
            c.participant_id: _Chain(c) for c in self.live.population.consumers
        }
        self._backlog = 0
        self._seq = 0
        for consumer in self.live.population.consumers:
            consumer.on_completion(
                lambda record: self.metrics.response_time.add(record.response_time)
            )

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    @property
    def horizon(self) -> float:
        return self.config.duration

    @property
    def backlog(self) -> int:
        """Admitted-but-not-yet-issued queries across all consumers."""
        return self._backlog

    def consumer_ids(self) -> List[str]:
        return list(self._chains)

    def submit(
        self,
        consumer_id: str,
        service_demand: Optional[float] = None,
        topic: Optional[str] = None,
        n_results: Optional[int] = None,
        quorum: Optional[int] = None,
        at: Optional[float] = None,
    ) -> Tuple[bool, Optional[str]]:
        """Offer one query to the ingress.

        Returns ``(accepted, drop_reason)``.  ``at`` is the requested
        simulation-time arrival instant (clamped to now; defaults to
        now); ``service_demand`` defaults to the population's mean
        demand, ``topic`` to the consumer id (the BOINC convention).
        """
        chain = self._chains.get(consumer_id)
        stats = self.admission.stats
        if chain is None:
            stats.submitted += 1
            self.admission.drop(consumer_id, REASON_UNKNOWN_CONSUMER)
            return False, REASON_UNKNOWN_CONSUMER
        time = self.sim.now if at is None else max(float(at), self.sim.now)
        if time > self.config.duration:
            stats.submitted += 1
            self.admission.drop(consumer_id, REASON_PAST_HORIZON)
            return False, REASON_PAST_HORIZON
        if not chain.consumer.online:
            stats.submitted += 1
            self.admission.drop(consumer_id, REASON_CONSUMER_OFFLINE)
            return False, REASON_CONSUMER_OFFLINE

        verdict, reason = self.admission.decide(consumer_id, time, self._backlog)
        if verdict == "drop":
            self.admission.drop(consumer_id, reason)
            return False, reason
        if verdict == "evict-oldest":
            self._evict_oldest()

        if service_demand is None:
            service_demand = self.config.population.demand_mean
        injection = _Injection(
            time=time,
            topic=consumer_id if topic is None else topic,
            service_demand=float(service_demand),
            n_results=n_results,
            quorum=quorum,
            seq=self._seq,
        )
        self._seq += 1
        chain.pending.append(injection)
        self._backlog += 1
        self.admission.admit()
        if chain.handle is None:
            self._schedule_head(chain)
        return True, None

    def _schedule_head(self, chain: _Chain) -> None:
        head = chain.pending[0]
        chain.handle = self.sim.schedule_at(
            max(head.time, self.sim.now),
            lambda: self._fire(chain),
            label=f"arrivals:{chain.consumer.participant_id}",
        )

    def _fire(self, chain: _Chain) -> None:
        # Mirrors TraceReplayProcess._fire: the same guards in the same
        # order, issue first, then schedule the successor.
        chain.handle = None
        if not chain.consumer.online:
            # the batch replay chain dies here too; pending work is
            # accounted, not silently forgotten
            self._drop_pending(chain, REASON_CONSUMER_OFFLINE)
            return
        if self.sim.now > self.config.duration:
            self._drop_pending(chain, REASON_PAST_HORIZON)
            return
        injection = chain.pending.popleft()
        self._backlog -= 1
        chain.consumer.issue(
            topic=injection.topic,
            service_demand=injection.service_demand,
            n_results=injection.n_results,
            quorum=injection.quorum,
        )
        self.metrics.ingress_delay.add(self.sim.now - injection.time)
        if chain.pending:
            self._schedule_head(chain)

    def _drop_pending(self, chain: _Chain, reason: str) -> None:
        cid = chain.consumer.participant_id
        while chain.pending:
            chain.pending.popleft()
            self._backlog -= 1
            self.admission.drop(cid, reason)

    def _evict_oldest(self) -> None:
        """Drop the longest-waiting pending injection (any consumer)."""
        oldest: Optional[_Chain] = None
        for chain in self._chains.values():
            if chain.pending and (
                oldest is None or chain.pending[0].seq < oldest.pending[0].seq
            ):
                oldest = chain
        if oldest is None:  # pragma: no cover - capacity >= 1 guarantees backlog
            return
        oldest.pending.popleft()
        self._backlog -= 1
        self.admission.drop(oldest.consumer.participant_id, REASON_SHED_OLDEST)
        if oldest.handle is not None:
            oldest.handle.cancel()
            oldest.handle = None
            if oldest.pending:
                self._schedule_head(oldest)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def advance_to(self, sim_time: float) -> None:
        """Run the simulation up to ``sim_time`` (no-op if in the past)."""
        self.live.step_until(sim_time)

    def advance_wall(self, elapsed_wall: float, speed: float = 1.0) -> None:
        """Map elapsed wall-clock seconds onto simulation time.

        ``speed`` is simulation seconds per wall second; the serve loop
        calls this from its ticker with a monotonic elapsed reading.
        """
        self.advance_to(elapsed_wall * speed)

    @property
    def finished(self) -> bool:
        return self.live.finished

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, object]:
        """The ``/metrics`` document: counters, satisfaction, admission
        accounting and streaming latency quantiles, all JSON scalars."""
        hub = self.live.hub
        registry = self.live.registry
        online = registry.online_consumers()
        satisfaction_now = (
            sum(c.satisfaction for c in online) / len(online) if online else 0.0
        )
        federation = getattr(self.live.mediator, "federation", None)
        shards = None
        if federation is not None:
            shards = [
                {
                    "shard": ordinal,
                    "queue_depth": sum(
                        p.queries_in_progress
                        for p in shard_registry.online_providers()
                    ),
                    "providers_online": len(shard_registry.online_providers()),
                    "mediations": shard.mediations,
                    "forwarded": shard.forwarded,
                }
                for ordinal, (shard, shard_registry) in enumerate(
                    zip(federation.mediators, federation.registries)
                )
            ]
        return {
            "policy": self.policy_spec.label,
            "sim_time": self.sim.now,
            "horizon": self.config.duration,
            "backlog": self._backlog,
            "queries": {
                "issued": hub.queries_issued,
                "completed": hub.queries_completed,
                "failed": hub.queries_failed,
                "timed_out": hub.queries_timed_out,
            },
            "satisfaction": {
                "consumer_now": satisfaction_now,
                "consumer_sampled": hub.consumer_satisfaction.last,
                "provider_sampled": hub.provider_satisfaction.last,
            },
            "population": {
                "consumers_online": len(online),
                "providers_online": len(registry.online_providers()),
            },
            "admission": self.admission.stats.snapshot(),
            "latency": self.metrics.snapshot(),
            **({"shards": shards} if shards is not None else {}),
        }

    def summary_now(self) -> RunSummary:
        """A :class:`RunSummary` of everything served *so far* -- what a
        graceful shutdown flushes without running to the horizon."""
        return build_summary(
            policy_name=self.policy_spec.label,
            duration=self.sim.now,
            hub=self.live.hub,
            registry=self.live.registry,
            mediator=self.live.mediator,
            network=self.live.network,
        )

    def final_payload(self) -> Dict[str, object]:
        """The shutdown flush: summary-so-far plus its digest and the
        admission accounting."""
        summary = self.summary_now()
        return {
            "summary": summary_payload(summary),
            "digest": summary_digest(summary),
            "admission": self.admission.stats.snapshot(),
        }

    # ------------------------------------------------------------------
    # Open-loop replay
    # ------------------------------------------------------------------

    def replay(self, trace: TraceSpec) -> RunResult:
        """Replay a trace open-loop and finalize the run.

        The whole trace is ingested first (every arrival submitted with
        its recorded instant), then the clock advances -- exactly the
        structure :class:`~repro.workloads.traces.TraceWorkload` wires,
        so with default (admit-everything) admission the digest of the
        returned result matches the batch replay's bit-for-bit.  Any
        admission drop during ingestion means the workload differs from
        the trace; a :class:`RuntimeError` says so rather than
        returning a silently different run.
        """
        arrivals = trace.materialize(consumer_ids=self.consumer_ids())
        for arrival in arrivals:
            accepted, reason = self.submit(
                arrival.consumer_id,
                service_demand=arrival.service_demand,
                topic=arrival.topic,
                n_results=arrival.n_results,
                quorum=arrival.quorum,
                at=arrival.time,
            )
            if not accepted:
                raise RuntimeError(
                    f"replay of trace {trace.name!r} dropped an arrival "
                    f"({reason}); digest parity needs admit-everything "
                    "admission (no queue capacity, no rate limit)"
                )
        return self.live.finalize()

    def __repr__(self) -> str:
        return (
            f"ServeEngine(policy={self.policy_spec.label!r}, t={self.sim.now:.6g}/"
            f"{self.config.duration:.6g}, backlog={self._backlog})"
        )
