"""Failure injection: abrupt provider crashes (robustness extension).

The churn model (:mod:`repro.system.autonomy`) covers *voluntary*
departure -- a dissatisfied provider finishes its backlog and leaves.
Real volunteer hosts also fail abruptly: the machine powers off, the
client crashes, the results in flight are simply lost.  BOINC defends
against this with replication (``q.n > 1``) and deadlines; this module
provides the failure side of that story so the defence is testable:

* :meth:`repro.system.provider.Provider.crash` drops the backlog and
  cancels every scheduled completion;
* consumers arm a ``result_timeout`` per allocated query and write off
  queries whose results never arrive;
* :class:`CrashInjector` drives crashes with exponential
  time-to-failure per provider and optional repair (the host reboots
  and rejoins with an empty queue).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

from repro.des.rng import RandomStream
from repro.des.scheduler import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.provider import Provider


@dataclass(frozen=True)
class FailureConfig:
    """Crash-injection parameters.

    Attributes
    ----------
    mttf:
        Mean time to failure per provider (seconds); each provider's
        time-to-crash is exponential with this mean, redrawn after each
        repair.
    repair_time:
        Seconds a crashed provider stays offline before rebooting with
        an empty queue; ``None`` means crashes are permanent.
    start:
        No crashes before this simulation time (lets the system warm
        up).
    """

    mttf: float = 2000.0
    repair_time: Optional[float] = 120.0
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.mttf <= 0:
            raise ValueError(f"mttf must be positive, got {self.mttf}")
        if self.repair_time is not None and self.repair_time <= 0:
            raise ValueError(
                f"repair_time must be positive when set, got {self.repair_time}"
            )
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start}")


@dataclass(frozen=True)
class Crash:
    """One injected crash."""

    time: float
    participant_id: str
    queries_lost: int


class CrashInjector:
    """Schedules exponential crashes (and optional repairs) per provider."""

    def __init__(
        self,
        sim: Simulator,
        providers: Iterable["Provider"],
        config: FailureConfig,
        stream: RandomStream,
    ) -> None:
        self.sim = sim
        self.providers = list(providers)
        self.config = config
        self._stream = stream
        self.crashes: List[Crash] = []
        self._listeners: List[Callable[[Crash], None]] = []
        self._started = False

    def on_crash(self, listener: Callable[[Crash], None]) -> None:
        """Register a callback fired on every crash."""
        self._listeners.append(listener)

    @property
    def queries_lost(self) -> int:
        """Total queries dropped across all crashes."""
        return sum(crash.queries_lost for crash in self.crashes)

    def start(self) -> None:
        """Arm one crash timer per provider (idempotent)."""
        if self._started:
            return
        self._started = True
        for provider in self.providers:
            self._arm(provider)

    def _arm(self, provider: "Provider") -> None:
        delay = self._stream.exponential(self.config.mttf)
        fire_at = max(self.config.start, self.sim.now) + delay
        self.sim.schedule_at(
            fire_at,
            lambda: self._crash(provider),
            label=f"crash:{provider.participant_id}",
        )

    def _crash(self, provider: "Provider") -> None:
        if not provider.online:
            # already gone (churn or an earlier crash); try again later
            # only if it may come back
            if self.config.repair_time is not None:
                self._arm(provider)
            return
        lost = provider.crash()
        crash = Crash(self.sim.now, provider.participant_id, lost)
        self.crashes.append(crash)
        for listener in self._listeners:
            listener(crash)
        if self.config.repair_time is not None:
            self.sim.schedule_in(
                self.config.repair_time,
                lambda: self._repair(provider),
                label=f"repair:{provider.participant_id}",
            )

    def _repair(self, provider: "Provider") -> None:
        # a provider that decided to *leave* while crashed stays gone
        if provider.online:
            return
        provider.rejoin()
        self._arm(provider)

    def __repr__(self) -> str:
        return (
            f"CrashInjector(providers={len(self.providers)}, "
            f"crashes={len(self.crashes)}, lost={self.queries_lost})"
        )
