"""Autonomy: participants may leave the system by dissatisfaction.

The paper's central motivation: in autonomous environments participants
"may leave the system by dissatisfaction, which causes a loss of
processing capacity ... As a result, one may have a system with poor
performance".  Scenario 2 instantiates this with thresholds: a provider
leaves when its satisfaction drops below 0.35 and a consumer stops
using the system below 0.5.

Two environments are modelled:

* **captive** (Scenarios 1 and 3): participants cannot quit -- e.g.
  BOINC used as a grid platform over dedicated machines;
* **autonomous** (Scenarios 2 and 4): a :class:`ChurnMonitor` polls
  satisfactions at a fixed interval and executes departures.

Departure checks require a minimum number of recorded interactions so
that a participant does not quit on cold-start noise, and a warmup
delay so the window first fills with steady-state behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Union

from repro.des.events import make_repeating
from repro.des.scheduler import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.consumer import Consumer
    from repro.system.provider import Provider

#: Scenario 2 thresholds from the paper.
PAPER_PROVIDER_THRESHOLD = 0.35
PAPER_CONSUMER_THRESHOLD = 0.5

Participant = Union["Consumer", "Provider"]


class DeparturePolicy:
    """Strategy: should this participant leave the system now?"""

    def should_leave(self, participant: Participant, now: float) -> bool:
        raise NotImplementedError

    @property
    def is_captive(self) -> bool:
        """True when the policy can never trigger a departure."""
        return False


class CaptivePolicy(DeparturePolicy):
    """Captive environments: participants are not allowed to quit."""

    def should_leave(self, participant: Participant, now: float) -> bool:
        return False

    @property
    def is_captive(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "CaptivePolicy()"


class SatisfactionDeparturePolicy(DeparturePolicy):
    """Leave when long-run satisfaction falls below a threshold.

    Parameters
    ----------
    threshold:
        Satisfaction below which the participant quits.
    min_observations:
        Interactions that must be inside the window before the
        threshold is armed (cold-start guard).
    warmup:
        Simulation time before which no departure happens.
    """

    def __init__(
        self,
        threshold: float,
        min_observations: int = 10,
        warmup: float = 0.0,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        if min_observations < 1:
            raise ValueError(f"min_observations must be >= 1, got {min_observations}")
        if warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {warmup}")
        self.threshold = threshold
        self.min_observations = min_observations
        self.warmup = warmup

    def should_leave(self, participant: Participant, now: float) -> bool:
        if now < self.warmup:
            return False
        if not participant.online:
            return False
        tracker = participant.tracker
        if tracker.observations < self.min_observations:
            return False
        return participant.satisfaction < self.threshold

    def __repr__(self) -> str:
        return (
            f"SatisfactionDeparturePolicy(threshold={self.threshold}, "
            f"min_observations={self.min_observations}, warmup={self.warmup})"
        )


@dataclass(frozen=True)
class Departure:
    """One departure as recorded by the churn monitor."""

    time: float
    participant_id: str
    kind: str  # "consumer" | "provider"
    satisfaction: float


@dataclass(frozen=True)
class Rejoin:
    """One return as recorded by the churn monitor (extension).

    The paper's participants leave for good; real volunteer platforms
    see them come back.  The rejoin extension models a cooldown after
    which a departed participant returns with a *fresh* satisfaction
    window -- it gives the system another chance rather than leaving
    again on its stale memories.
    """

    time: float
    participant_id: str
    kind: str  # "consumer" | "provider"
    absence: float  # seconds spent offline


class ChurnMonitor:
    """Periodically applies departure policies to all participants.

    The monitor does not remove participants from the registry itself;
    it flips their ``online`` flag via ``leave()`` (providers drain any
    accepted backlog; consumers simply stop issuing) and notifies the
    registered listeners (the metrics hub records the capacity loss).
    """

    def __init__(
        self,
        sim: Simulator,
        consumers: Iterable["Consumer"],
        providers: Iterable["Provider"],
        consumer_policy: DeparturePolicy,
        provider_policy: DeparturePolicy,
        check_interval: float = 10.0,
        rejoin_cooldown: Optional[float] = None,
    ) -> None:
        if check_interval <= 0:
            raise ValueError(f"check_interval must be positive, got {check_interval}")
        if rejoin_cooldown is not None and rejoin_cooldown <= 0:
            raise ValueError(
                f"rejoin_cooldown must be positive when set, got {rejoin_cooldown}"
            )
        self.sim = sim
        self.consumers = list(consumers)
        self.providers = list(providers)
        self.consumer_policy = consumer_policy
        self.provider_policy = provider_policy
        self.check_interval = check_interval
        self.rejoin_cooldown = rejoin_cooldown
        self.departures: List[Departure] = []
        self.rejoins: List[Rejoin] = []
        self._listeners: List[Callable[[Departure], None]] = []
        self._rejoin_listeners: List[Callable[[Rejoin], None]] = []
        self._started = False

    def on_departure(self, listener: Callable[[Departure], None]) -> None:
        """Register a callback fired on every departure."""
        self._listeners.append(listener)

    def on_rejoin(self, listener: Callable[[Rejoin], None]) -> None:
        """Register a callback fired on every rejoin."""
        self._rejoin_listeners.append(listener)

    def start(self, first_check_in: Optional[float] = None) -> None:
        """Begin the periodic checks (idempotent)."""
        if self._started:
            return
        self._started = True
        if self.consumer_policy.is_captive and self.provider_policy.is_captive:
            return  # nothing will ever leave: skip the event churn entirely
        tick = make_repeating(self.sim.schedule_in, self.check_interval, self.check_once)
        delay = self.check_interval if first_check_in is None else first_check_in
        self.sim.schedule_in(delay, tick, label="churn:first-check")

    def check_once(self) -> List[Departure]:
        """Run one departure sweep; returns the departures it caused."""
        now = self.sim.now
        if self.rejoin_cooldown is not None:
            self._rejoin_sweep(now)
        new: List[Departure] = []
        for consumer in self.consumers:
            if consumer.online and self.consumer_policy.should_leave(consumer, now):
                consumer.leave(now)
                new.append(
                    Departure(now, consumer.participant_id, "consumer", consumer.satisfaction)
                )
        for provider in self.providers:
            if provider.online and self.provider_policy.should_leave(provider, now):
                provider.leave(now)
                new.append(
                    Departure(now, provider.participant_id, "provider", provider.satisfaction)
                )
        self.departures.extend(new)
        for departure in new:
            for listener in self._listeners:
                listener(departure)
        return new

    def _rejoin_sweep(self, now: float) -> None:
        """Bring back participants whose cooldown elapsed, fresh-windowed."""
        assert self.rejoin_cooldown is not None
        for kind, members in (("consumer", self.consumers), ("provider", self.providers)):
            for participant in members:
                if participant.online or participant.left_at is None:
                    continue
                absence = now - participant.left_at
                if absence < self.rejoin_cooldown:
                    continue
                # fresh window: without it the stale satisfaction would
                # re-trigger the departure policy on the next sweep
                participant.tracker.reset()
                participant.rejoin()
                rejoin = Rejoin(now, participant.participant_id, kind, absence)
                self.rejoins.append(rejoin)
                for listener in self._rejoin_listeners:
                    listener(rejoin)

    @property
    def providers_online(self) -> int:
        return sum(1 for p in self.providers if p.online)

    @property
    def consumers_online(self) -> int:
        return sum(1 for c in self.consumers if c.online)

    def __repr__(self) -> str:
        return (
            f"ChurnMonitor(consumers={self.consumers_online}/{len(self.consumers)}, "
            f"providers={self.providers_online}/{len(self.providers)}, "
            f"departures={len(self.departures)})"
        )


def paper_policies(
    warmup: float = 0.0,
    min_observations: int = 10,
) -> tuple:
    """The Scenario-2 policy pair: provider < 0.35, consumer < 0.5."""
    consumer = SatisfactionDeparturePolicy(
        PAPER_CONSUMER_THRESHOLD, min_observations=min_observations, warmup=warmup
    )
    provider = SatisfactionDeparturePolicy(
        PAPER_PROVIDER_THRESHOLD, min_observations=min_observations, warmup=warmup
    )
    return consumer, provider
