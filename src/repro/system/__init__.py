"""Query and participant model.

This package models the *autonomous environment* of the paper: an open
distributed system in which **consumers** issue queries and
**providers** perform them, both with their own interests, mediated by
a query-allocation component (:mod:`repro.core.mediator`).

Contents:

* :mod:`repro.system.query` -- queries, allocation records, results;
* :mod:`repro.system.provider` -- volunteer/provider entities with a
  FIFO work queue, capacity, utilization and a satisfaction window over
  the k last *proposed* queries (Definition 2 of the paper);
* :mod:`repro.system.consumer` -- project/consumer entities issuing
  queries, tracking per-query satisfaction (Equation 1 / Definition 1)
  and per-provider observed performance (used by reputation- and
  response-time-based intentions);
* :mod:`repro.system.autonomy` -- departure policies: captive
  environments vs. satisfaction-threshold churn (Scenario 2);
* :mod:`repro.system.registry` -- membership and capability lookup
  (the set ``P_q`` of providers able to perform a query).
"""

from repro.system.query import AllocationRecord, Query, QueryResult, QueryStatus
from repro.system.provider import Provider, ProviderStats
from repro.system.consumer import Consumer, ConsumerStats
from repro.system.autonomy import (
    CaptivePolicy,
    ChurnMonitor,
    Departure,
    DeparturePolicy,
    Rejoin,
    SatisfactionDeparturePolicy,
)
from repro.system.failures import Crash, CrashInjector, FailureConfig
from repro.system.registry import SystemRegistry

__all__ = [
    "Query",
    "QueryResult",
    "QueryStatus",
    "AllocationRecord",
    "Provider",
    "ProviderStats",
    "Consumer",
    "ConsumerStats",
    "DeparturePolicy",
    "CaptivePolicy",
    "SatisfactionDeparturePolicy",
    "ChurnMonitor",
    "Departure",
    "Rejoin",
    "FailureConfig",
    "CrashInjector",
    "Crash",
    "SystemRegistry",
]
