"""Queries, allocation records and results.

A query ``q`` in the paper is an independent computational task issued
by a consumer ``q.c`` that requires ``q.n`` results (BOINC replicates
tasks to defend against malicious volunteers).  The mediator allocates
``q`` to up to ``min(q.n, kn)`` providers; the set of providers that
actually performed it is written ``P̂_q`` and drives the consumer's
per-query satisfaction (Equation 1).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.consumer import Consumer
    from repro.system.provider import Provider

_query_counter = itertools.count()


def reset_query_counter() -> None:
    """Reset the global query-id counter (test isolation only)."""
    global _query_counter
    _query_counter = itertools.count()


class QueryStatus(enum.Enum):
    """Lifecycle of a query through the mediation pipeline."""

    ISSUED = "issued"          # created by the consumer, travelling to the mediator
    ALLOCATED = "allocated"    # mediator chose >= 1 provider
    FAILED = "failed"          # no provider could be allocated
    COMPLETED = "completed"    # all allocated providers returned results
    TIMED_OUT = "timed-out"    # results never arrived (crash extension)


@dataclass
class Query:
    """An independent computational task.

    Attributes
    ----------
    consumer:
        The issuing consumer (``q.c`` in the paper).
    topic:
        Capability tag; providers declare which topics they can serve.
        In the BOINC scenario the topic is the project name.
    service_demand:
        Work units required; a provider with ``capacity`` work units
        per second serves it in ``service_demand / capacity`` seconds.
    n_results:
        ``q.n``, the number of results (replicas) the consumer requires.
    issued_at:
        Simulation time at which the consumer issued the query.
    """

    consumer: "Consumer"
    topic: str
    service_demand: float
    n_results: int
    issued_at: float
    #: How many of the replicas must return before the query counts as
    #: answered.  ``None`` (the default, the paper's behaviour) means
    #: all allocated providers must answer; a smaller quorum is BOINC's
    #: defence against crashed or slow volunteers -- issue ``n``
    #: replicas, accept the first ``quorum`` results.
    quorum: Optional[int] = None
    qid: int = field(default_factory=lambda: next(_query_counter))
    status: QueryStatus = QueryStatus.ISSUED

    def __post_init__(self) -> None:
        if self.service_demand <= 0:
            raise ValueError(f"service_demand must be positive, got {self.service_demand}")
        if self.n_results < 1:
            raise ValueError(f"n_results must be >= 1, got {self.n_results}")
        if self.quorum is not None and not 1 <= self.quorum <= self.n_results:
            raise ValueError(
                f"quorum must satisfy 1 <= quorum <= n_results, got "
                f"quorum={self.quorum}, n_results={self.n_results}"
            )

    @property
    def consumer_id(self) -> str:
        """Identifier of the issuing consumer."""
        return self.consumer.participant_id

    def __hash__(self) -> int:
        return hash(self.qid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self.qid == other.qid

    def __repr__(self) -> str:
        return (
            f"Query(qid={self.qid}, consumer={self.consumer_id!r}, topic={self.topic!r}, "
            f"demand={self.service_demand:.3g}, n={self.n_results}, {self.status.value})"
        )


@dataclass(frozen=True)
class QueryResult:
    """One result returned by one provider for one query."""

    query: Query
    provider_id: str
    started_at: float
    finished_at: float

    @property
    def service_span(self) -> float:
        """Wall-clock the provider spent on the query (queueing excluded)."""
        return self.finished_at - self.started_at


@dataclass
class AllocationRecord:
    """Everything the mediator decided about one query.

    This is the unit of bookkeeping used by the satisfaction model: it
    remembers which providers were *informed* (proposed the query --
    they enter the provider-side window of Definition 2) and which were
    *allocated* (they perform it), plus the intentions both sides
    expressed and the scores/omega the policy used, when applicable.
    """

    query: Query
    decided_at: float
    allocated: List["Provider"] = field(default_factory=list)
    informed: List["Provider"] = field(default_factory=list)
    consumer_intentions: Dict[str, float] = field(default_factory=dict)
    provider_intentions: Dict[str, float] = field(default_factory=dict)
    scores: Dict[str, float] = field(default_factory=dict)
    omegas: Dict[str, float] = field(default_factory=dict)
    adequation: Optional[float] = None
    consultation_delay: float = 0.0
    results: List[QueryResult] = field(default_factory=list)
    completed_at: Optional[float] = None

    @property
    def allocated_ids(self) -> List[str]:
        """Identifiers of providers performing the query."""
        return [p.participant_id for p in self.allocated]

    @property
    def informed_ids(self) -> List[str]:
        """Identifiers of providers the mediation touched (the Kn set for SbQA)."""
        return [p.participant_id for p in self.informed]

    @property
    def is_failure(self) -> bool:
        """True when the mediator could not allocate the query at all."""
        return not self.allocated

    @property
    def response_time(self) -> Optional[float]:
        """Issue-to-last-result latency, or None while incomplete/failed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.query.issued_at

    @property
    def results_required(self) -> int:
        """Results needed for completion: the query's quorum, bounded by
        how many providers were actually allocated (all of them when no
        quorum is set -- the paper's behaviour)."""
        if not self.allocated:
            return 0
        if self.query.quorum is None:
            return len(self.allocated)
        return min(self.query.quorum, len(self.allocated))

    def record_result(self, result: QueryResult) -> bool:
        """Register one provider result.

        Returns True when this result completes the query (the required
        number of providers have answered), which is the instant the
        paper's response time is measured at.
        """
        if result.query.qid != self.query.qid:
            raise ValueError(
                f"result for query {result.query.qid} recorded on record of "
                f"query {self.query.qid}"
            )
        self.results.append(result)
        if len(self.results) >= self.results_required and self.completed_at is None:
            self.completed_at = result.finished_at
            self.query.status = QueryStatus.COMPLETED
            return True
        return False
