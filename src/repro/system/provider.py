"""Providers: the volunteers donating capacity.

A provider is a simulation entity with

* a **service model**: a FIFO work queue over a fixed ``capacity``
  (work units per second).  A query with demand ``d`` occupies it for
  ``d / capacity`` seconds after any backlog drains;
* **utilization** in [0, 1]: the queued backlog expressed in seconds,
  normalised by a ``saturation_horizon`` -- the backlog at which the
  provider considers itself saturated.  KnBest stage 2 and the
  capacity-based baseline read this;
* **preferences** over consumers and topics in [-1, 1], from which its
  :class:`~repro.core.intentions.ProviderIntentionModel` computes the
  intentions ``PI_q[p]`` it expresses to the mediator;
* a **satisfaction window** over the ``k`` last proposed queries
  (Definition 2), which the churn model reads to decide departures;
* optional **resource shares** per consumer -- the native BOINC
  mechanism ("the fraction of computational resources devoted to each
  consumer") used by the BOINC-shares baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.intentions import (
    PreferenceUtilizationIntentions,
    ProviderIntentionModel,
    clamp_intention,
)
from repro.core.satisfaction import DEFAULT_MEMORY, ProviderSatisfactionTracker
from repro.des.entity import Entity
from repro.des.network import Message, Network
from repro.des.scheduler import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.query import AllocationRecord, Query, QueryResult

#: Default backlog (seconds) at which a provider reports utilization 1.
DEFAULT_SATURATION_HORIZON = 120.0


@dataclass
class ProviderStats:
    """Aggregate execution counters for one provider."""

    queries_received: int = 0
    queries_completed: int = 0
    work_units_done: float = 0.0
    busy_seconds: float = 0.0
    work_by_consumer: Dict[str, float] = field(default_factory=dict)

    def record_completion(self, consumer_id: str, demand: float, service_time: float) -> None:
        self.queries_completed += 1
        self.work_units_done += demand
        self.busy_seconds += service_time
        self.work_by_consumer[consumer_id] = (
            self.work_by_consumer.get(consumer_id, 0.0) + demand
        )


class Provider(Entity):
    """A volunteer host serving queries through a FIFO queue.

    Parameters
    ----------
    sim, network:
        Simulation kernel bindings.
    participant_id:
        Stable identifier (also used for deterministic tie-breaks).
    capacity:
        Work units processed per second; must be positive.
    preferences:
        Map of consumer id -> preference in [-1, 1].
    topic_preferences:
        Map of topic -> preference, consulted when no per-consumer
        preference exists.
    default_preference:
        Fallback when neither map matches (0 = indifferent).
    intention_model:
        How ``PI_q[p]`` is computed; defaults to the
        preference/utilization blend.
    memory:
        Window length ``k`` of the satisfaction tracker.
    saturation_horizon:
        Backlog, in seconds, mapped to utilization 1.
    resource_shares:
        Optional BOINC-style fractions per consumer (need not be
        normalised; the shares baseline normalises them).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        participant_id: str,
        capacity: float = 1.0,
        preferences: Optional[Dict[str, float]] = None,
        topic_preferences: Optional[Dict[str, float]] = None,
        default_preference: float = 0.0,
        intention_model: Optional[ProviderIntentionModel] = None,
        memory: int = DEFAULT_MEMORY,
        saturation_horizon: float = DEFAULT_SATURATION_HORIZON,
        resource_shares: Optional[Dict[str, float]] = None,
    ) -> None:
        super().__init__(sim, name=participant_id)
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if saturation_horizon <= 0:
            raise ValueError(
                f"saturation_horizon must be positive, got {saturation_horizon}"
            )
        self.network = network
        self.participant_id = participant_id
        self.capacity = float(capacity)
        self.preferences = dict(preferences or {})
        self.topic_preferences = dict(topic_preferences or {})
        self.default_preference = clamp_intention(default_preference)
        self.intention_model = intention_model or PreferenceUtilizationIntentions()
        self.tracker = ProviderSatisfactionTracker(memory=memory)
        self.saturation_horizon = float(saturation_horizon)
        self.resource_shares = dict(resource_shares or {})
        self.stats = ProviderStats()

        # Registry-notification hooks fire on every online-state
        # transition (the registries' capability indexes invalidate
        # their snapshots through them), so they must exist before the
        # first assignment to ``online``.
        self._registry_hooks: list = []
        self._online = True
        self.joined_at = sim.now
        self.left_at: Optional[float] = None
        self.crashes = 0
        self._busy_until = sim.now
        self._pending: Dict[int, object] = {}  # qid -> completion EventHandle

    # ------------------------------------------------------------------
    # Registry notification
    # ------------------------------------------------------------------

    @property
    def online(self) -> bool:
        """Whether this provider is eligible for new allocations.

        Assigning the attribute (directly or via :meth:`leave` /
        :meth:`rejoin` / :meth:`crash`) notifies every subscribed
        registry, which is how the capability indexes of
        :class:`~repro.system.registry.SystemRegistry` stay current.
        """
        return self._online

    @online.setter
    def online(self, value: bool) -> None:
        value = bool(value)
        if value == self._online:
            return
        self._online = value
        for hook in self._registry_hooks:
            hook(self)

    def add_registry_hook(self, hook) -> None:
        """Subscribe ``hook(provider)`` to online-state transitions."""
        if hook not in self._registry_hooks:
            self._registry_hooks.append(hook)

    # ------------------------------------------------------------------
    # Preferences and intentions
    # ------------------------------------------------------------------

    def preference_for(self, query: "Query") -> float:
        """Static preference for the query's consumer (or topic)."""
        consumer_id = query.consumer_id
        if consumer_id in self.preferences:
            return self.preferences[consumer_id]
        if query.topic in self.topic_preferences:
            return self.topic_preferences[query.topic]
        return self.default_preference

    def intention_for(self, query: "Query") -> float:
        """``PI_q[p]``: the intention this provider expresses for ``query``."""
        return self.intention_model.intention(self, query)

    # ------------------------------------------------------------------
    # Load model
    # ------------------------------------------------------------------

    @property
    def backlog_seconds(self) -> float:
        """Seconds of queued work remaining (0 when idle)."""
        return max(0.0, self._busy_until - self.sim.now)

    @property
    def utilization(self) -> float:
        """Backlog normalised by the saturation horizon, clamped to [0, 1].

        Read on every KnBest stage-2 sort and every provider intention,
        so the backlog is inlined (same ``max``/``min`` arithmetic as
        :attr:`backlog_seconds`) instead of chaining properties.
        """
        backlog = max(0.0, self._busy_until - self.sim.now)
        return min(1.0, backlog / self.saturation_horizon)

    @property
    def available_capacity(self) -> float:
        """Headroom signal used by the capacity-based baseline [9]."""
        return self.capacity * (1.0 - self.utilization)

    def service_time(self, demand: float) -> float:
        """Seconds of pure service a demand of ``demand`` work units takes."""
        if demand <= 0:
            raise ValueError(f"demand must be positive, got {demand}")
        return demand / self.capacity

    def estimated_completion_delay(self, demand: float) -> float:
        """Backlog plus service time: the delay a new query would see.

        This is the quantity a Mariposa-style provider folds into its
        bid (time is money in the economic baseline).
        """
        return self.backlog_seconds + self.service_time(demand)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    #: Fast-engine direct delivery (see Entity.FAST_HANDLERS).
    FAST_HANDLERS = {"execute": "execute"}

    def receive(self, message: Message) -> None:
        """Entity hook: accept ``execute`` messages from the mediator."""
        if message.kind != "execute":
            raise ValueError(
                f"provider {self.participant_id!r} got unexpected message "
                f"{message.kind!r}"
            )
        record: "AllocationRecord" = message.payload
        self.execute(record)

    def execute(self, record: "AllocationRecord") -> None:
        """Enqueue the query and schedule its completion.

        Providers honour work already accepted even after leaving
        (lame-duck draining), so every allocated query eventually
        completes and the consumer can measure its response time.
        """
        from repro.system.query import QueryResult  # local: avoid cycle at import

        query = record.query
        # Enqueue through begin_execution so the fast engine's batched
        # result drain and this faithful path can never drift apart on
        # the FIFO arithmetic (bit-identity between them is the engine
        # parity contract).
        start, finish, service = self.begin_execution(record)

        def complete() -> None:
            self._pending.pop(query.qid, None)
            result = QueryResult(
                query=query,
                provider_id=self.participant_id,
                started_at=start,
                finished_at=finish,
            )
            self.stats.record_completion(query.consumer_id, query.service_demand, service)
            self.network.send("result", self, query.consumer, payload=(record, result))

        handle = self.sim.schedule_in(
            finish - self.sim.now, complete, label=f"{self.participant_id}:complete:{query.qid}"
        )
        self._pending[query.qid] = handle

    def begin_execution(self, record: "AllocationRecord"):
        """Enqueue one allocated query without scheduling its completion.

        The fast-engine half of :meth:`execute`: identical state
        changes (FIFO enqueue, received counter) at the same instant,
        but the completion event is owned by the caller's batched
        result drain (:class:`repro.core.engine._ResultDrain`), which
        registers a cancellable entry in ``_pending`` itself so
        :meth:`crash` keeps working.  Returns ``(start, finish,
        service)`` for the drain's bookkeeping.
        """
        start = max(self.sim.now, self._busy_until)
        service = self.service_time(record.query.service_demand)
        finish = start + service
        self._busy_until = finish
        self.stats.queries_received += 1
        return start, finish, service

    def finish_execution(self, record: "AllocationRecord", service: float) -> None:
        """Completion bookkeeping at the faithful completion instant.

        Drain hop 1: exactly what the scheduled ``complete`` closure of
        :meth:`execute` does at the same clock value, minus the result
        send (the drain delivers the batched results itself).
        """
        query = record.query
        self._pending.pop(query.qid, None)
        self.stats.record_completion(query.consumer_id, query.service_demand, service)

    # ------------------------------------------------------------------
    # Satisfaction and membership
    # ------------------------------------------------------------------

    def record_proposal(self, intention: float, performed: bool) -> None:
        """Append one proposed query to the Definition-2 window."""
        self.tracker.record_proposal(intention, performed)

    @property
    def satisfaction(self) -> float:
        """delta_s(p), Definition 2 (neutral before any proposal)."""
        return self.tracker.satisfaction()

    def leave(self, now: Optional[float] = None) -> None:
        """Quit the system: stop being eligible for new allocations."""
        if not self.online:
            return
        self.online = False
        self.left_at = self.sim.now if now is None else now

    def rejoin(self) -> None:
        """Return to the system (used by optional churn extensions)."""
        if self.online:
            return
        self.online = True
        self.left_at = None
        self.joined_at = self.sim.now

    @property
    def queries_in_progress(self) -> int:
        """Accepted queries whose results have not been produced yet."""
        return len(self._pending)

    def crash(self) -> int:
        """Fail abruptly: drop the whole backlog, produce no results.

        Unlike :meth:`leave` (graceful departure with lame-duck
        draining), a crash cancels every scheduled completion -- the
        consumers of those queries never receive the results and must
        rely on their own timeouts.  Returns the number of queries
        lost.  The provider goes offline; a failure-injection process
        may :meth:`rejoin` it after a repair time.
        """
        lost = len(self._pending)
        for handle in self._pending.values():
            handle.cancel()  # type: ignore[attr-defined]
        self._pending.clear()
        self._busy_until = self.sim.now
        self.crashes += 1
        self.online = False
        self.left_at = self.sim.now
        return lost

    def __repr__(self) -> str:
        state = "online" if self.online else "offline"
        return (
            f"Provider({self.participant_id!r}, capacity={self.capacity:.3g}, "
            f"util={self.utilization:.2f}, sat={self.satisfaction:.2f}, {state})"
        )
