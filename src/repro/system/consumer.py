"""Consumers: the projects issuing queries.

A consumer is a simulation entity that

* **issues queries** (the arrival process lives in
  :mod:`repro.workloads.arrivals`; it calls :meth:`Consumer.issue`);
* holds **preferences** over providers in [-1, 1] and a running
  **reputation** estimate per provider (an exponentially weighted
  average of observed response times mapped into [0, 1]), from which
  its :class:`~repro.core.intentions.ConsumerIntentionModel` computes
  the intentions ``CI_q[p]`` it expresses to the mediator;
* records its per-query satisfaction (Equation 1) in a Definition-1
  window, which the churn model reads ("a consumer stops using BOINC
  if its satisfaction is smaller than 0.5" -- Scenario 2);
* measures **response times**: a query responds when its last
  allocated provider returns a result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.intentions import (
    ConsumerIntentionModel,
    ReputationBlendIntentions,
    clamp_intention,
)
from repro.core.satisfaction import DEFAULT_MEMORY, ConsumerSatisfactionTracker
from repro.des.entity import Entity
from repro.des.network import Message, Network
from repro.des.scheduler import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.provider import Provider
    from repro.system.query import AllocationRecord, Query, QueryResult

#: Response time (seconds) at which perceived reputation crosses 0.5.
DEFAULT_RT_REFERENCE = 60.0

#: Smoothing factor of the per-provider response-time EWMA.
DEFAULT_RT_SMOOTHING = 0.3


@dataclass
class ConsumerStats:
    """Aggregate counters for one consumer."""

    queries_issued: int = 0
    queries_completed: int = 0
    queries_failed: int = 0
    queries_timed_out: int = 0
    response_time_sum: float = 0.0

    @property
    def mean_response_time(self) -> float:
        """Mean response time over completed queries (0 when none)."""
        if self.queries_completed == 0:
            return 0.0
        return self.response_time_sum / self.queries_completed


class Consumer(Entity):
    """A project that issues queries and judges how they were served.

    Parameters
    ----------
    sim, network:
        Simulation kernel bindings.
    participant_id:
        Stable identifier.
    preferences:
        Map of provider id -> preference in [-1, 1].
    default_preference:
        Fallback preference for unknown providers.
    intention_model:
        How ``CI_q[p]`` is computed; defaults to the
        preference/reputation blend.
    memory:
        Window length ``k`` of the satisfaction tracker.
    default_n_results:
        ``q.n`` used when :meth:`issue` is not told otherwise (BOINC
        replicates queries to validate results from possibly malicious
        volunteers).
    rt_reference, rt_smoothing:
        Parameters of the reputation estimate: response times are
        EWMA-smoothed per provider and mapped through
        ``ref / (ref + ewma)`` into (0, 1].
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        participant_id: str,
        preferences: Optional[Dict[str, float]] = None,
        default_preference: float = 0.0,
        intention_model: Optional[ConsumerIntentionModel] = None,
        memory: int = DEFAULT_MEMORY,
        default_n_results: int = 1,
        rt_reference: float = DEFAULT_RT_REFERENCE,
        rt_smoothing: float = DEFAULT_RT_SMOOTHING,
    ) -> None:
        super().__init__(sim, name=participant_id)
        if default_n_results < 1:
            raise ValueError(f"default_n_results must be >= 1, got {default_n_results}")
        if rt_reference <= 0:
            raise ValueError(f"rt_reference must be positive, got {rt_reference}")
        if not 0.0 < rt_smoothing <= 1.0:
            raise ValueError(f"rt_smoothing must be in (0, 1], got {rt_smoothing}")
        self.network = network
        self.participant_id = participant_id
        self.preferences = dict(preferences or {})
        self.default_preference = clamp_intention(default_preference)
        self.intention_model = intention_model or ReputationBlendIntentions()
        self.tracker = ConsumerSatisfactionTracker(memory=memory)
        self.default_n_results = default_n_results
        self.rt_reference = float(rt_reference)
        self.rt_smoothing = float(rt_smoothing)
        self.stats = ConsumerStats()

        # Registry-notification hooks (see Provider): must exist before
        # the first assignment to ``online``.
        self._registry_hooks: List = []
        self._online = True
        self.joined_at = sim.now
        self.left_at: Optional[float] = None

        self._mediator: Optional[Entity] = None
        self._rt_ewma: Dict[str, float] = {}
        #: Dirty-sets subscribed by SoA intention caches: every provider
        #: id whose EWMA changes is added to each registered set, so a
        #: cached CI column refreshes exactly the slots that moved (see
        #: repro.core.soa).  Empty unless the fast engine's fused kernel
        #: is active.
        self._intention_sinks: List[set] = []
        self._issue_listeners: List[Callable[["Query"], None]] = []
        self._completion_listeners: List[Callable[["AllocationRecord"], None]] = []
        self._timeout_listeners: List[Callable[["AllocationRecord"], None]] = []
        #: When set (seconds), a query whose results have not all arrived
        #: within the deadline is written off (crash extension): it counts
        #: as timed out, records a zero-satisfaction interaction, and any
        #: late results no longer count as a completion.
        self.result_timeout: Optional[float] = None
        #: Default quorum stamped on issued queries (None = all replicas
        #: must answer, the paper's behaviour).
        self.default_quorum: Optional[int] = None
        self._timed_out_qids: set = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_mediator(self, mediator: Entity) -> None:
        """Point this consumer at the mediator all its queries go to."""
        self._mediator = mediator

    @property
    def online(self) -> bool:
        """Whether this consumer still issues queries.

        Assignment notifies subscribed registries (snapshot caches)."""
        return self._online

    @online.setter
    def online(self, value: bool) -> None:
        value = bool(value)
        if value == self._online:
            return
        self._online = value
        for hook in self._registry_hooks:
            hook(self)

    def add_registry_hook(self, hook) -> None:
        """Subscribe ``hook(consumer)`` to online-state transitions."""
        if hook not in self._registry_hooks:
            self._registry_hooks.append(hook)

    def on_issue(self, listener: Callable[["Query"], None]) -> None:
        """Register a callback fired for every query this consumer issues
        (arrival recorders; fired after the query is on the wire)."""
        self._issue_listeners.append(listener)

    def on_completion(self, listener: Callable[["AllocationRecord"], None]) -> None:
        """Register a callback fired whenever one of this consumer's
        queries completes (metrics hub, focal-participant probes)."""
        self._completion_listeners.append(listener)

    def on_timeout(self, listener: Callable[["AllocationRecord"], None]) -> None:
        """Register a callback fired when a query is written off."""
        self._timeout_listeners.append(listener)

    # ------------------------------------------------------------------
    # Preferences, reputation, intentions
    # ------------------------------------------------------------------

    def preference_for(self, provider_id: str) -> float:
        """Static preference towards a provider."""
        return self.preferences.get(provider_id, self.default_preference)

    def reputation_of(self, provider_id: str) -> float:
        """Perceived responsiveness of a provider, in (0, 1].

        Unknown providers start at the neutral 0.5; every observed
        response time updates an EWMA which is squashed through
        ``ref / (ref + ewma)`` -- fast providers approach 1, slow ones
        approach 0.
        """
        ewma = self._rt_ewma.get(provider_id)
        if ewma is None:
            return 0.5
        return self.rt_reference / (self.rt_reference + ewma)

    def observe_response_time(self, provider_id: str, response_time: float) -> None:
        """Fold one observed response time into the provider's reputation.

        This is the *only* mutation site of the reputation state, which
        is what lets SoA intention caches subscribe a dirty-set here and
        treat their CI columns as valid between notifications.
        """
        if response_time < 0:
            raise ValueError(f"response time must be non-negative, got {response_time}")
        previous = self._rt_ewma.get(provider_id)
        if previous is None:
            self._rt_ewma[provider_id] = response_time
        else:
            a = self.rt_smoothing
            self._rt_ewma[provider_id] = a * response_time + (1.0 - a) * previous
        for sink in self._intention_sinks:
            sink.add(provider_id)

    def intention_for(self, query: "Query", provider: "Provider") -> float:
        """``CI_q[p]``: this consumer's intention to allocate to ``provider``."""
        return self.intention_model.intention(self, query, provider)

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------

    def issue(
        self,
        topic: str,
        service_demand: float,
        n_results: Optional[int] = None,
        quorum: Optional[int] = None,
    ) -> "Query":
        """Create a query and send it to the mediator.

        Raises if no mediator is attached; offline consumers do not
        issue (the arrival process checks, but this guards direct use).
        """
        from repro.system.query import Query  # local: avoid cycle at import

        if self._mediator is None:
            raise RuntimeError(
                f"consumer {self.participant_id!r} has no mediator attached"
            )
        if not self.online:
            raise RuntimeError(f"consumer {self.participant_id!r} is offline")
        query = Query(
            consumer=self,
            topic=topic,
            service_demand=service_demand,
            n_results=self.default_n_results if n_results is None else n_results,
            quorum=self.default_quorum if quorum is None else quorum,
            issued_at=self.sim.now,
        )
        self.stats.queries_issued += 1
        self.network.send("query", self, self._mediator, payload=query)
        if self._issue_listeners:
            for listener in self._issue_listeners:
                listener(query)
        return query

    #: Fast-engine direct delivery (see Entity.FAST_HANDLERS).
    FAST_HANDLERS = {
        "result": "_receive_result_payload",
        "mediation-ok": "_on_allocation",
        "mediation-failed": "_on_failure",
    }

    def receive(self, message: Message) -> None:
        """Entity hook: results, mediation outcomes, failure notices."""
        if message.kind == "result":
            record, result = message.payload
            self._on_result(record, result)
        elif message.kind == "mediation-ok":
            self._on_allocation(message.payload)
        elif message.kind == "mediation-failed":
            self._on_failure(message.payload)
        else:
            raise ValueError(
                f"consumer {self.participant_id!r} got unexpected message "
                f"{message.kind!r}"
            )

    def _receive_result_payload(self, payload) -> None:
        """Fast-path delivery of a ``result`` payload (record, result)."""
        record, result = payload
        self._on_result(record, result)

    def _on_allocation(self, record: "AllocationRecord") -> None:
        """Mediation result arrived; arm the result deadline if configured."""
        if self.result_timeout is None:
            return
        deadline = record.query.issued_at + self.result_timeout
        delay = max(0.0, deadline - self.sim.now)
        self.sim.schedule_in(
            delay,
            lambda: self._check_timeout(record),
            label=f"{self.participant_id}:timeout:{record.query.qid}",
        )

    def _check_timeout(self, record: "AllocationRecord") -> None:
        from repro.system.query import QueryStatus  # local: avoid cycle

        if record.completed_at is not None:
            return  # all results arrived in time
        qid = record.query.qid
        if qid in self._timed_out_qids:
            return
        self._timed_out_qids.add(qid)
        record.query.status = QueryStatus.TIMED_OUT
        self.stats.queries_timed_out += 1
        # the promised results never came: one zero-satisfaction
        # interaction reflects the failed delivery (Equation 1 over an
        # empty performer set)
        self.record_query_satisfaction(0.0, adequation=0.0)
        for listener in self._timeout_listeners:
            listener(record)

    def _on_result(self, record: "AllocationRecord", result: "QueryResult") -> None:
        arrived_at = self.sim.now  # result message delivery time
        self.observe_response_time(
            result.provider_id, arrived_at - record.query.issued_at
        )
        completed = record.record_result(result)
        if completed and record.query.qid not in self._timed_out_qids:
            # The record's completion time is the provider-side finish;
            # the consumer-perceived response adds the return latency.
            record.completed_at = arrived_at
            self.stats.queries_completed += 1
            self.stats.response_time_sum += arrived_at - record.query.issued_at
            for listener in self._completion_listeners:
                listener(record)

    def absorb_results(self, record: "AllocationRecord", results) -> None:
        """Fold a batch of same-instant results in, in allocated order.

        The fast engine's batched result drain delivers every member of
        one finish-instant group at one clock value, so the arrival
        time, the response time (arrival minus issue -- identical for
        all members of one query) and the timed-out check are resolved
        once per batch instead of once per result.  Per member, the
        bookkeeping sequence is exactly :meth:`_on_result`'s -- EWMA
        fold, sink notification, result registration, completion
        accounting -- in the same order, so every float and the
        completion instant are bit-identical to per-member delivery.
        """
        arrived_at = self.sim.now
        query = record.query
        response_time = arrived_at - query.issued_at
        rt_ewma = self._rt_ewma
        a = self.rt_smoothing
        sinks = self._intention_sinks
        for result in results:
            pid = result.provider_id
            previous = rt_ewma.get(pid)
            if previous is None:
                rt_ewma[pid] = response_time
            else:
                rt_ewma[pid] = a * response_time + (1.0 - a) * previous
            for sink in sinks:
                sink.add(pid)
            completed = record.record_result(result)
            if completed and query.qid not in self._timed_out_qids:
                record.completed_at = arrived_at
                self.stats.queries_completed += 1
                self.stats.response_time_sum += response_time
                for listener in self._completion_listeners:
                    listener(record)

    def _on_failure(self, record: "AllocationRecord") -> None:
        self.stats.queries_failed += 1

    # ------------------------------------------------------------------
    # Satisfaction and membership
    # ------------------------------------------------------------------

    def record_query_satisfaction(self, satisfaction: float, adequation: float = 1.0) -> None:
        """Append one Equation-1 value to the Definition-1 window."""
        self.tracker.record_query(satisfaction, adequation)

    @property
    def satisfaction(self) -> float:
        """delta_s(c), Definition 1 (neutral before any query)."""
        return self.tracker.satisfaction()

    def leave(self, now: Optional[float] = None) -> None:
        """Stop using the system (no further queries are issued)."""
        if not self.online:
            return
        self.online = False
        self.left_at = self.sim.now if now is None else now

    def rejoin(self) -> None:
        """Return to the system (used by optional churn extensions)."""
        if self.online:
            return
        self.online = True
        self.left_at = None
        self.joined_at = self.sim.now

    def __repr__(self) -> str:
        state = "online" if self.online else "offline"
        return (
            f"Consumer({self.participant_id!r}, issued={self.stats.queries_issued}, "
            f"sat={self.satisfaction:.2f}, {state})"
        )
