"""Membership and capability lookup.

The registry answers the first question of every mediation: *which
providers are able to perform this query* -- the set ``P_q`` of the
paper.  A provider is capable when it is online and either serves all
topics (the default; every BOINC volunteer attaches to all projects in
the demo scenario) or lists the query's topic among its capabilities.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.consumer import Consumer
    from repro.system.provider import Provider
    from repro.system.query import Query


class SystemRegistry:
    """Tracks consumers, providers and topic capabilities."""

    def __init__(self) -> None:
        self._consumers: Dict[str, "Consumer"] = {}
        self._providers: Dict[str, "Provider"] = {}
        self._capabilities: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_consumer(self, consumer: "Consumer") -> None:
        if consumer.participant_id in self._consumers:
            raise ValueError(f"duplicate consumer id {consumer.participant_id!r}")
        self._consumers[consumer.participant_id] = consumer

    def add_provider(
        self, provider: "Provider", topics: Optional[Iterable[str]] = None
    ) -> None:
        """Register a provider, optionally restricted to some topics.

        ``topics=None`` (the default) means the provider can perform
        queries of any topic.
        """
        if provider.participant_id in self._providers:
            raise ValueError(f"duplicate provider id {provider.participant_id!r}")
        self._providers[provider.participant_id] = provider
        if topics is not None:
            self._capabilities[provider.participant_id] = set(topics)

    def consumer(self, participant_id: str) -> "Consumer":
        return self._consumers[participant_id]

    def provider(self, participant_id: str) -> "Provider":
        return self._providers[participant_id]

    @property
    def consumers(self) -> List["Consumer"]:
        """All registered consumers, in insertion order."""
        return list(self._consumers.values())

    @property
    def providers(self) -> List["Provider"]:
        """All registered providers, in insertion order."""
        return list(self._providers.values())

    def online_consumers(self) -> List["Consumer"]:
        return [c for c in self._consumers.values() if c.online]

    def online_providers(self) -> List["Provider"]:
        return [p for p in self._providers.values() if p.online]

    # ------------------------------------------------------------------
    # Capability lookup
    # ------------------------------------------------------------------

    def can_serve(self, provider: "Provider", topic: str) -> bool:
        """Whether ``provider`` declares capability for ``topic``."""
        topics = self._capabilities.get(provider.participant_id)
        return topics is None or topic in topics

    def capable_providers(self, query: "Query") -> List["Provider"]:
        """The set ``P_q``: online providers able to perform the query."""
        capabilities = self._capabilities
        if not capabilities:
            # Common case (every BOINC volunteer attaches to all
            # projects): skip the per-provider capability lookup.
            return [p for p in self._providers.values() if p.online]
        topic = query.topic
        return [
            p
            for p in self._providers.values()
            if p.online
            and (
                (topics := capabilities.get(p.participant_id)) is None
                or topic in topics
            )
        ]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def total_capacity(self, online_only: bool = True) -> float:
        """Aggregate provider capacity -- "the total system capacity"
        whose preservation motivates satisfaction-based allocation."""
        providers = self.online_providers() if online_only else self.providers
        return sum(p.capacity for p in providers)

    def mean_provider_satisfaction(self) -> float:
        """Mean delta_s(p) over online providers (neutral if none)."""
        online = self.online_providers()
        if not online:
            return 0.0
        return sum(p.satisfaction for p in online) / len(online)

    def mean_consumer_satisfaction(self) -> float:
        """Mean delta_s(c) over online consumers (neutral if none)."""
        online = self.online_consumers()
        if not online:
            return 0.0
        return sum(c.satisfaction for c in online) / len(online)

    def __repr__(self) -> str:
        return (
            f"SystemRegistry(consumers={len(self._consumers)}, "
            f"providers={len(self._providers)})"
        )
