"""Membership and capability lookup.

The registry answers the first question of every mediation: *which
providers are able to perform this query* -- the set ``P_q`` of the
paper.  A provider is capable when it is online and either serves all
topics (the default; every BOINC volunteer attaches to all projects in
the demo scenario) or lists the query's topic among its capabilities.

Because that question is asked once per mediation, the registry keeps
**incremental indexes** so answering it costs ``O(|P_q|)`` instead of a
scan over every registered provider:

* a **per-topic capability index**: registered topic-restricted
  providers, grouped by topic, each entry carrying its registration
  ordinal so merged listings preserve registration order;
* an **unrestricted index**: registered providers that serve every
  topic (the common BOINC case), in registration order;
* **snapshot caches**: :meth:`capable_snapshot` returns a reusable
  tuple per topic, rebuilt lazily only after a membership or
  online-state transition.

The indexes stay current through a *registry-notification hook*:
:meth:`add_provider` subscribes the registry to the provider's
online-state transitions (``leave`` / ``rejoin`` / ``crash`` or a
direct ``provider.online = ...`` assignment), so a transition merely
bumps a version counter and the next lookup rebuilds the affected
snapshot.  Index membership itself only changes on ``add_provider``
(append-only, so registration order -- the order every pre-index
listing exposed, and the order the seeded KnBest sample depends on --
is preserved by construction).  As a defence in depth, a periodic
consistency rebuild re-derives the indexes from the authoritative
membership maps every :data:`REBUILD_EVERY` transitions, mirroring the
periodic window rebuilds of :mod:`repro.core.satisfaction`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

# One source of truth for the aggregate backend: the scoring module
# owns the SBQA_SCORING_BACKEND switch (read once at import), the
# guarded numpy import, and the raise-on-missing-numpy contract.
# (Submodule-form import: robust against repro.core's own __init__
# being mid-execution when this module loads.)
import repro.core.scoring as _scoring

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.consumer import Consumer
    from repro.system.provider import Provider
    from repro.system.query import Query

#: Online-state transitions between full defensive re-derivations of the
#: capability indexes (the satisfaction windows use the same pattern:
#: incremental bookkeeping, periodically rebuilt from authority).
REBUILD_EVERY = 4096

#: Environment switch shared with :mod:`repro.core.scoring`: the
#: aggregate sweeps below grow a numpy backend behind the same flag.
AGGREGATE_BACKEND_ENV = _scoring.SCORING_BACKEND_ENV

#: Cross-run memo of id-sorted rank columns, keyed by the pids tuple.
#: Replications of one sweep point register identical provider ids in
#: identical order, so every run after the first reuses the sorted rank
#: permutation instead of re-deriving it per snapshot.  Entries are
#: read-only once stored.
_RANKS_MEMO: Dict[Tuple[str, ...], List[int]] = {}
_RANKS_MEMO_LIMIT = 64


def _ranks_for(pids: Tuple[str, ...]) -> List[int]:
    """``ranks[s]`` = position of ``pids[s]`` in the id-sorted order.

    Within one snapshot integer ranks compare exactly like the id
    strings (ids are unique), which is what lets ordinal-space kernels
    break ties on ints; see
    :meth:`repro.core.knbest.KnBestSelector.sample_working_ordinals`.
    """
    ranks = _RANKS_MEMO.get(pids)
    if ranks is None:
        order = sorted(range(len(pids)), key=pids.__getitem__)
        ranks = [0] * len(pids)
        for rank, slot in enumerate(order):
            ranks[slot] = rank
        if len(_RANKS_MEMO) >= _RANKS_MEMO_LIMIT:
            _RANKS_MEMO.clear()
        _RANKS_MEMO[pids] = ranks
    return ranks


class SnapshotMeta:
    """Ordinal metadata of one capability snapshot.

    Shared by every consumer consulting the same snapshot (the fused
    kernel's :class:`~repro.core.soa.ConsultColumns` borrow these
    rather than rebuilding them per consumer):

    * ``pids[s]`` -- participant id of snapshot slot ``s``;
    * ``slot_of[pid]`` -- inverse map;
    * ``ranks[s]`` -- position of ``pids[s]`` in id-sorted order.

    Like the snapshot tuple itself, a meta object is immutable once
    built and its validity is checked by snapshot *identity*.
    """

    __slots__ = ("snapshot", "pids", "slot_of", "ranks")

    def __init__(self, snapshot) -> None:
        self.snapshot = snapshot
        self.pids = [p.participant_id for p in snapshot]
        self.slot_of = {pid: s for s, pid in enumerate(self.pids)}
        self.ranks = _ranks_for(tuple(self.pids))


class SystemRegistry:
    """Tracks consumers, providers and topic capabilities."""

    def __init__(self) -> None:
        self._consumers: Dict[str, "Consumer"] = {}
        self._providers: Dict[str, "Provider"] = {}
        self._capabilities: Dict[str, Set[str]] = {}

        # -- incremental capability indexes (registration order) --------
        # Entries are (ordinal, provider); ordinals are the registration
        # sequence, so merging two index lists by ordinal reproduces the
        # order a scan over ``_providers`` would yield.
        self._unrestricted: List[Tuple[int, "Provider"]] = []
        self._topic_members: Dict[str, List[Tuple[int, "Provider"]]] = {}

        # -- snapshot caches, invalidated by version counters -----------
        # ``_provider_version`` advances on provider membership changes
        # and online-state transitions; ``_consumer_version`` likewise
        # for consumers.  Caches remember the version they were built at.
        self._provider_version = 0
        self._consumer_version = 0
        self._online_providers_cache: Tuple[int, Tuple["Provider", ...]] = (-1, ())
        self._online_consumers_cache: Tuple[int, Tuple["Consumer", ...]] = (-1, ())
        self._capable_cache: Dict[str, Tuple[int, Tuple["Provider", ...]]] = {}
        self._providers_cache: Optional[Tuple["Provider", ...]] = None
        self._consumers_cache: Optional[Tuple["Consumer", ...]] = None
        self._capacity_cache: Dict[bool, Tuple[int, float]] = {}
        self._snapshot_meta_cache: Dict[str, SnapshotMeta] = {}
        self._transitions_since_rebuild = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_consumer(self, consumer: "Consumer") -> None:
        if consumer.participant_id in self._consumers:
            raise ValueError(f"duplicate consumer id {consumer.participant_id!r}")
        self._consumers[consumer.participant_id] = consumer
        consumer.add_registry_hook(self._on_consumer_transition)
        self._consumers_cache = None
        self._consumer_version += 1

    def add_provider(
        self, provider: "Provider", topics: Optional[Iterable[str]] = None
    ) -> None:
        """Register a provider, optionally restricted to some topics.

        ``topics=None`` (the default) means the provider can perform
        queries of any topic.
        """
        if provider.participant_id in self._providers:
            raise ValueError(f"duplicate provider id {provider.participant_id!r}")
        ordinal = len(self._providers)
        self._providers[provider.participant_id] = provider
        if topics is not None:
            topic_set = set(topics)
            self._capabilities[provider.participant_id] = topic_set
            entry = (ordinal, provider)
            for topic in topic_set:
                self._topic_members.setdefault(topic, []).append(entry)
        else:
            self._unrestricted.append((ordinal, provider))
        provider.add_registry_hook(self._on_provider_transition)
        self._providers_cache = None
        self._provider_version += 1

    def consumer(self, participant_id: str) -> "Consumer":
        return self._consumers[participant_id]

    def provider(self, participant_id: str) -> "Provider":
        return self._providers[participant_id]

    @property
    def version(self) -> int:
        """Provider-membership/online-state version counter.

        Advances on every provider registration and online-state
        transition.  External caches over this registry's provider
        population (e.g. the federation's merged candidate pools) key
        their validity on it instead of re-fetching snapshots per call.
        """
        return self._provider_version

    @property
    def consumers(self) -> Tuple["Consumer", ...]:
        """All registered consumers, in insertion order (cached tuple)."""
        cache = self._consumers_cache
        if cache is None:
            cache = tuple(self._consumers.values())
            self._consumers_cache = cache
        return cache

    @property
    def providers(self) -> Tuple["Provider", ...]:
        """All registered providers, in insertion order (cached tuple).

        Metric collectors read this every sample; returning the cached
        tuple (invalidated only by ``add_provider``) avoids a fresh
        list per access.
        """
        cache = self._providers_cache
        if cache is None:
            cache = tuple(self._providers.values())
            self._providers_cache = cache
        return cache

    def online_consumers(self) -> List["Consumer"]:
        return list(self.online_consumers_snapshot())

    def online_providers(self) -> List["Provider"]:
        return list(self.online_providers_snapshot())

    def online_providers_snapshot(self) -> Tuple["Provider", ...]:
        """Online providers in registration order, as a reusable tuple.

        Rebuilt lazily after a membership/online transition; stable (the
        *same* object) between transitions, so hot-path consumers may
        key per-snapshot caches on its identity.
        """
        version, snapshot = self._online_providers_cache
        if version != self._provider_version:
            snapshot = tuple(p for p in self._providers.values() if p.online)
            self._online_providers_cache = (self._provider_version, snapshot)
        return snapshot

    def online_consumers_snapshot(self) -> Tuple["Consumer", ...]:
        """Online consumers in registration order, as a reusable tuple."""
        version, snapshot = self._online_consumers_cache
        if version != self._consumer_version:
            snapshot = tuple(c for c in self._consumers.values() if c.online)
            self._online_consumers_cache = (self._consumer_version, snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # Registry-notification hooks (membership/online transitions)
    # ------------------------------------------------------------------

    def _on_provider_transition(self, provider: "Provider") -> None:
        self._provider_version += 1
        self._transitions_since_rebuild += 1
        if self._transitions_since_rebuild >= REBUILD_EVERY:
            self.rebuild_indexes()

    def _on_consumer_transition(self, consumer: "Consumer") -> None:
        self._consumer_version += 1

    def rebuild_indexes(self) -> None:
        """Re-derive every index from the authoritative membership maps.

        The incremental indexes are append-only and therefore correct by
        construction; this defensive rebuild (periodic, like the
        satisfaction windows' exact re-summation) re-derives them from
        ``_providers`` / ``_capabilities`` so that even out-of-band
        mutation of the capability sets cannot leave a stale index
        behind indefinitely.  Also drops every snapshot cache.
        """
        self._unrestricted = []
        self._topic_members = {}
        for ordinal, (pid, provider) in enumerate(self._providers.items()):
            topics = self._capabilities.get(pid)
            if topics is None:
                self._unrestricted.append((ordinal, provider))
            else:
                entry = (ordinal, provider)
                for topic in topics:
                    self._topic_members.setdefault(topic, []).append(entry)
        self._capable_cache.clear()
        self._capacity_cache.clear()
        self._providers_cache = None
        self._provider_version += 1
        self._transitions_since_rebuild = 0

    def check_index_consistency(self) -> bool:
        """True when every index and cache matches a naive re-derivation.

        Verifies (tests call this after every churn transition):

        * the per-topic and unrestricted capability indexes against a
          fresh enumeration of the membership maps;
        * the cached ``.providers`` / ``.consumers`` tuples (when
          built) against a fresh scan -- a stale tuple would silently
          feed metric samplers the wrong population;
        * every **current-version** ``total_capacity`` cache entry
          against a fresh reduction over the same provider set with the
          same backend expression (stale-version entries are legal by
          design: the next lookup discards them).
        """
        unrestricted = [
            (ordinal, p)
            for ordinal, (pid, p) in enumerate(self._providers.items())
            if pid not in self._capabilities
        ]
        if unrestricted != self._unrestricted:
            return False
        expected: Dict[str, List[Tuple[int, "Provider"]]] = {}
        for ordinal, (pid, p) in enumerate(self._providers.items()):
            for topic in self._capabilities.get(pid, ()):
                expected.setdefault(topic, []).append((ordinal, p))
        if expected != self._topic_members:
            return False

        # -- cached membership tuples (invalidated only by add_*) -------
        if self._providers_cache is not None and self._providers_cache != tuple(
            self._providers.values()
        ):
            return False
        if self._consumers_cache is not None and self._consumers_cache != tuple(
            self._consumers.values()
        ):
            return False

        # -- version-cached capacity aggregates -------------------------
        for online_only, (version, total) in self._capacity_cache.items():
            current = (
                self._provider_version if online_only else len(self._providers)
            )
            if version != current:
                continue  # stale entry: the next lookup recomputes it
            providers = (
                self.online_providers_snapshot() if online_only else self.providers
            )
            if total != _aggregate_sum([p.capacity for p in providers]):
                return False
        return True

    # ------------------------------------------------------------------
    # Capability lookup
    # ------------------------------------------------------------------

    def can_serve(self, provider: "Provider", topic: str) -> bool:
        """Whether ``provider`` declares capability for ``topic``."""
        topics = self._capabilities.get(provider.participant_id)
        return topics is None or topic in topics

    def capable_snapshot(self, topic: str) -> Tuple["Provider", ...]:
        """The set ``P_q`` for ``topic`` as a reusable tuple.

        Cached per topic and rebuilt only after a membership or
        online-state transition, so between transitions a mediation
        pays one dict probe instead of a scan over every registered
        provider.  The tuple lists providers in registration order --
        exactly the order the pre-index ``capable_providers`` scan
        produced, which the seeded KnBest stage-1 sample depends on.
        The returned tuple must not be mutated (it is shared across
        mediations); its identity is stable between transitions, so
        policies may key per-snapshot caches on ``snapshot is ...``.
        """
        if not self._capabilities:
            # Common case (every BOINC volunteer attaches to all
            # projects): P_q is the online set for every topic.
            return self.online_providers_snapshot()
        version = self._provider_version
        cached = self._capable_cache.get(topic)
        if cached is not None and cached[0] == version:
            return cached[1]
        members = self._topic_members.get(topic)
        if not members:
            snapshot = tuple(p for _, p in self._unrestricted if p.online)
        elif not self._unrestricted:
            snapshot = tuple(p for _, p in members if p.online)
        else:
            # Both index lists are ordinal-sorted; a linear merge
            # reproduces registration order across them.
            merged: List["Provider"] = []
            append = merged.append
            i = j = 0
            unrestricted = self._unrestricted
            n_u, n_m = len(unrestricted), len(members)
            while i < n_u and j < n_m:
                if unrestricted[i][0] < members[j][0]:
                    p = unrestricted[i][1]
                    i += 1
                else:
                    p = members[j][1]
                    j += 1
                if p.online:
                    append(p)
            for ordinal, p in unrestricted[i:]:
                if p.online:
                    append(p)
            for ordinal, p in members[j:]:
                if p.online:
                    append(p)
            snapshot = tuple(merged)
        self._capable_cache[topic] = (version, snapshot)
        return snapshot

    def snapshot_meta(self, topic: str) -> SnapshotMeta:
        """The current ``P_q`` snapshot for ``topic`` plus ordinal metadata.

        ``meta.snapshot`` is exactly what :meth:`capable_snapshot`
        would return; the metadata is cached per topic against the
        snapshot's identity, so between transitions this costs two dict
        probes and the ordinal columns are shared by every consumer.
        """
        snapshot = self.capable_snapshot(topic)
        cached = self._snapshot_meta_cache.get(topic)
        if cached is not None and cached.snapshot is snapshot:
            return cached
        meta = SnapshotMeta(snapshot)
        self._snapshot_meta_cache[topic] = meta
        return meta

    def capable_providers(self, query: "Query") -> List["Provider"]:
        """The set ``P_q``: online providers able to perform the query.

        List-returning compatibility form of :meth:`capable_snapshot`
        (the hot paths consume the snapshot tuple directly).
        """
        return list(self.capable_snapshot(query.topic))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def total_capacity(self, online_only: bool = True) -> float:
        """Aggregate provider capacity -- "the total system capacity"
        whose preservation motivates satisfaction-based allocation.

        Capacity is immutable per provider, so the sum is cached per
        membership/online version: the per-sample cost between
        transitions is a dict probe, not a population sweep.
        """
        version = self._provider_version if online_only else len(self._providers)
        cached = self._capacity_cache.get(online_only)
        if cached is not None and cached[0] == version:
            return cached[1]
        providers = (
            self.online_providers_snapshot() if online_only else self.providers
        )
        total = _aggregate_sum([p.capacity for p in providers])
        self._capacity_cache[online_only] = (version, total)
        return total

    def mean_provider_satisfaction(self) -> float:
        """Mean delta_s(p) over online providers (neutral if none).

        One pass over the cached online snapshot -- the per-call
        ``online_providers()`` list build and filter are gone; the
        values list handed to the reduction remains (the numpy backend
        needs a sequence).
        """
        online = self.online_providers_snapshot()
        if not online:
            return 0.0
        return _aggregate_sum([p.satisfaction for p in online]) / len(online)

    def mean_consumer_satisfaction(self) -> float:
        """Mean delta_s(c) over online consumers (neutral if none)."""
        online = self.online_consumers_snapshot()
        if not online:
            return 0.0
        return _aggregate_sum([c.satisfaction for c in online]) / len(online)

    def __repr__(self) -> str:
        return (
            f"SystemRegistry(consumers={len(self._consumers)}, "
            f"providers={len(self._providers)})"
        )


def _aggregate_sum(values: List[float], backend: Optional[str] = None) -> float:
    """One whole-population reduction, backend-selectable.

    ``backend=None`` always means the python reference path -- plain
    left-to-right ``sum``, the exact floats every pre-index release
    produced.  These aggregates feed digest-visible summary fields, so
    unlike :func:`repro.core.scoring.score_providers_batch` the default
    here is deliberately *decoupled* from ``SBQA_SCORING_BACKEND``:
    numpy's pairwise summation rounds differently (a parity test pins
    the difference to relative 1e-12), and a backend flip must never
    change a result digest.  The numpy path stays reachable through an
    explicit ``backend="numpy"`` (any
    :data:`repro.core.scoring.BACKEND_ALIASES` spelling) and raises
    when numpy is not importable.
    """
    if backend is None:
        backend = "python"
    else:
        backend = _scoring.resolve_backend(backend)
    if backend == "numpy":
        np = _scoring._np
        if np is None:
            raise RuntimeError(
                "numpy backend requested but numpy is not importable; "
                "use backend='python'"
            )
        if not values:
            return 0.0
        return float(np.asarray(values, dtype=np.float64).sum())
    return sum(values)
