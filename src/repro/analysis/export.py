"""CSV export of series and tables (for downstream plotting)."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union


def rows_to_csv(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Serialise a table to CSV text; optionally also write it to ``path``."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have as many cells as there are headers")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def series_to_csv(
    series: Dict[str, Sequence[Tuple[float, float]]],
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Serialise named ``(t, value)`` series to long-format CSV.

    Columns: ``series, t, value`` -- the layout plotting tools ingest
    directly.
    """
    headers = ["series", "t", "value"]
    rows = []
    for name, values in series.items():
        for t, value in values:
            rows.append([name, t, value])
    return rows_to_csv(headers, rows, path=path)
