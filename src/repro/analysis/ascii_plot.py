"""Character-based plots: the headless stand-in for the demo's GUIs.

The prototype drew satisfaction and response-time curves on-line
(Figure 2b); :func:`render_series` draws the same curves with unicode
block characters so bench output remains inspectable in a terminal or
a CI log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Eight vertical resolution steps per character cell.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """One-line sparkline of a series.

    ``lo``/``hi`` pin the scale (useful to compare sparklines across
    methods); they default to the series extremes.
    """
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _BLOCKS[4] * len(values)
    chars = []
    for v in values:
        frac = (v - lo) / span
        frac = min(1.0, max(0.0, frac))
        chars.append(_BLOCKS[round(frac * (len(_BLOCKS) - 1))])
    return "".join(chars)


def multi_sparkline(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    shared_scale: bool = True,
) -> str:
    """Label-aligned sparklines for several series, optionally on one scale."""
    if not series:
        return ""
    lo = hi = None
    if shared_scale:
        everything = [v for values in series.values() for v in values]
        if everything:
            lo, hi = min(everything), max(everything)
    label_width = max(len(name) for name in series)
    lines = []
    for name, values in series.items():
        rendered = sparkline(_resample(list(values), width), lo=lo, hi=hi)
        tail = f" (last={values[-1]:.3f})" if values else ""
        lines.append(f"{name.ljust(label_width)} {rendered}{tail}")
    return "\n".join(lines)


def render_series(
    series: Dict[str, Sequence[Tuple[float, float]]],
    height: int = 12,
    width: int = 72,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """A full multi-series line chart as a character grid.

    ``series`` maps a label to ``(t, value)`` pairs.  Each series gets
    a distinct marker; the y-axis is shared and annotated.
    """
    markers = "*+ox#@%&"
    points = {k: list(v) for k, v in series.items() if v}
    if not points:
        return "(no data)"
    all_t = [t for values in points.values() for t, _ in values]
    all_y = [y for values in points.values() for _, y in values]
    t_lo, t_hi = min(all_t), max(all_t)
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if t_hi == t_lo:
        t_hi = t_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (label, values) in enumerate(points.items()):
        marker = markers[idx % len(markers)]
        for t, y in values:
            col = round((t - t_lo) / (t_hi - t_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            axis = f"{y_hi:8.3f} |"
        elif i == height - 1:
            axis = f"{y_lo:8.3f} |"
        else:
            axis = " " * 8 + " |"
        lines.append(axis + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"t={t_lo:.0f} .. t={t_hi:.0f}" + (f"   y: {y_label}" if y_label else ""))
    legend = "   ".join(
        f"{markers[idx % len(markers)]} {label}" for idx, label in enumerate(points)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def _resample(values: List[float], width: int) -> List[float]:
    """Downsample a series to at most ``width`` points by bucket means."""
    if len(values) <= width or width <= 0:
        return values
    bucket = len(values) / width
    out = []
    for i in range(width):
        start = int(i * bucket)
        end = max(start + 1, int((i + 1) * bucket))
        chunk = values[start:end]
        out.append(sum(chunk) / len(chunk))
    return out
