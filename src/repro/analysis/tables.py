"""Fixed-width ASCII tables for bench and CLI reports."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def format_value(value: Any, decimals: int = 3) -> str:
    """Render one cell: floats rounded, None as '-', rest via str()."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        magnitude = abs(value)
        if magnitude != 0 and (magnitude >= 1e6 or magnitude < 10 ** (-decimals)):
            return f"{value:.{decimals}g}"
        return f"{value:.{decimals}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    decimals: int = 3,
) -> str:
    """Render a table with a header rule, right-aligned numeric columns.

    Example output::

        policy     | mean rt | p95 rt | provider sat
        -----------+---------+--------+-------------
        sbqa       |  41.203 | 98.771 |        0.713
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have as many cells as there are headers")
    cells: List[List[str]] = [[format_value(v, decimals) for v in row] for row in rows]
    numeric = [
        all(
            isinstance(row[col], (int, float)) and not isinstance(row[col], bool)
            for row in rows
            if row[col] is not None
        )
        for col in range(len(headers))
    ]
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in cells)) if cells else len(headers[col])
        for col in range(len(headers))
    ]

    def fmt_row(parts: Sequence[str], align_numeric: bool) -> str:
        out = []
        for col, part in enumerate(parts):
            if align_numeric and numeric[col]:
                out.append(part.rjust(widths[col]))
            else:
                out.append(part.ljust(widths[col]))
        return " | ".join(out).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers), align_numeric=False))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(fmt_row(row, align_numeric=True))
    return "\n".join(lines)


def rows_from_dicts(
    records: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None
) -> tuple:
    """Turn a list of dicts into ``(headers, rows)`` for :func:`render_table`.

    Column order defaults to first-seen key order across all records.
    """
    if columns is None:
        seen: List[str] = []
        for record in records:
            for key in record:
                if key not in seen:
                    seen.append(key)
        columns = seen
    rows = [[record.get(col) for col in columns] for record in records]
    return list(columns), rows
