"""Reporting and statistics helpers.

The demo prototype displayed satisfaction and response-time series in
Swing GUIs (Figure 2); this package is the headless equivalent used by
the benches and the CLI:

* :mod:`repro.analysis.stats` -- mean / percentiles / stdev / Gini /
  streaming Welford accumulator;
* :mod:`repro.analysis.tables` -- fixed-width ASCII tables;
* :mod:`repro.analysis.ascii_plot` -- sparklines and multi-series line
  charts rendered with characters;
* :mod:`repro.analysis.export` -- CSV export of series and tables.
"""

from repro.analysis.stats import (
    Welford,
    gini,
    mean,
    median,
    percentile,
    stdev,
    summarize_distribution,
)
from repro.analysis.tables import format_value, render_table
from repro.analysis.ascii_plot import multi_sparkline, render_series, sparkline
from repro.analysis.export import rows_to_csv, series_to_csv
from repro.analysis.prediction import PredictionReport, predict_departures
from repro.analysis.significance import Comparison, compare_aggregates, welch_t_test

__all__ = [
    "mean",
    "median",
    "percentile",
    "stdev",
    "gini",
    "Welford",
    "summarize_distribution",
    "render_table",
    "format_value",
    "sparkline",
    "multi_sparkline",
    "render_series",
    "rows_to_csv",
    "series_to_csv",
    "PredictionReport",
    "predict_departures",
    "Comparison",
    "compare_aggregates",
    "welch_t_test",
]
