"""Statistical comparison of replicated experiment results.

Single seeded runs settle "who wins" at one operating point; claims in
EXPERIMENTS.md -- and the significance annotations in every
:class:`~repro.api.results.SweepResult` digest -- deserve better.  This
module compares a summary metric across two sets of replications with
Welch's unequal-variance t-test; only the t-distribution CDF comes from
scipy, the statistic itself is computed from the textbook formulas.

Why Welch and not Student: the two cells of a comparison are different
configurations (different policies, or different sweep coordinates), so
there is no reason to expect their variances to be equal -- and pooled-
variance t-tests are badly sized under variance heterogeneity.  Welch's
test drops the equal-variance assumption at the cost of approximating
the degrees of freedom (Welch-Satterthwaite).

Assumptions that DO remain, and how this codebase meets them:

* **Independence across samples.**  Each sample is one replication;
  replication ``i`` derives an independent random root from
  ``(seed, i)`` (:func:`repro.des.rng.spawn_replication_root`), so
  within-cell samples are independent draws.  Note that the two *cells*
  share replication seeds by design (common random numbers); the test
  treats them as unpaired, which is conservative -- positive correlation
  between cells shrinks the true variance of the difference below what
  the unpaired test assumes.
* **Approximate normality of the cell means.**  Each sample is itself a
  run-level aggregate (a mean, a final value, a quantile) over thousands
  of simulated interactions, so the CLT does a lot of work even at small
  replication counts; still, with fewer than ~5 replications per cell,
  treat borderline p-values as indicative, not conclusive.
* **At least two replications per cell** -- a sample variance needs
  Bessel's ``n - 1 >= 1``.  :func:`welch_t_test` raises below that, and
  the sweep layer simply omits comparisons for single-replication runs.

Identical (zero-variance) cells return ``t = 0, p = 1`` rather than
dividing by zero: equality is the strongest possible failure to reject.

**Multiple comparisons.**  A sweep point compares every policy pair on
every metric, and a tuning rung tests every challenger against the
incumbent; at a per-test ``alpha`` of 0.05 a 20-test family expects one
false positive.  :func:`holm_correction` implements the Holm-Bonferroni
step-down adjustment -- uniformly more powerful than plain Bonferroni,
valid under arbitrary dependence between the tests -- and
:func:`holm_adjust` applies it to a family of :class:`Comparison`
values, filling their ``p_adjusted`` field.  The sweep layer corrects
within each point's family, the tuner within each rung's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Sequence

from scipy import stats as _scipy_stats

from repro.analysis.stats import mean

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.replication import AggregateResult


@dataclass(frozen=True)
class Comparison:
    """Welch t-test of one metric between two replication sets.

    ``p_adjusted`` is the multiplicity-corrected p-value when the
    comparison belongs to a family that went through
    :func:`holm_adjust`; ``None`` for a lone, uncorrected test.
    """

    metric: str
    label_a: str
    label_b: str
    mean_a: float
    mean_b: float
    difference: float  # mean_a - mean_b
    t_statistic: float
    degrees_of_freedom: float
    p_value: float
    p_adjusted: Optional[float] = None

    def significant(self, alpha: float = 0.05) -> bool:
        """Two-sided significance at level ``alpha``.

        Judged on the Holm-adjusted p-value when the comparison was
        corrected as part of a family, on the raw p-value otherwise.
        """
        p = self.p_value if self.p_adjusted is None else self.p_adjusted
        return p < alpha

    def format(self) -> str:
        adjusted = (
            "" if self.p_adjusted is None else f", p_holm={self.p_adjusted:.4f}"
        )
        return (
            f"{self.metric}: {self.label_a}={self.mean_a:.4g} vs "
            f"{self.label_b}={self.mean_b:.4g} (diff {self.difference:+.4g}, "
            f"t={self.t_statistic:.2f}, dof={self.degrees_of_freedom:.1f}, "
            f"p={self.p_value:.4f}{adjusted})"
        )

    def as_dict(self) -> dict:
        """JSON-friendly form (the sweep digest's comparison entries)."""
        return {
            "metric": self.metric,
            "label_a": self.label_a,
            "label_b": self.label_b,
            "mean_a": self.mean_a,
            "mean_b": self.mean_b,
            "difference": self.difference,
            "t_statistic": self.t_statistic,
            "degrees_of_freedom": self.degrees_of_freedom,
            "p_value": self.p_value,
            "p_adjusted": self.p_adjusted,
        }


def welch_t_test(samples_a: Sequence[float], samples_b: Sequence[float]) -> tuple:
    """Welch's t statistic, degrees of freedom and two-sided p-value.

    Implemented from the textbook formulas (sample variances with
    Bessel's correction, Welch-Satterthwaite dof); only the t-CDF comes
    from scipy.  Identical samples yield ``t = 0, p = 1``.
    """
    n_a, n_b = len(samples_a), len(samples_b)
    if n_a < 2 or n_b < 2:
        raise ValueError(
            f"need at least 2 samples per side, got {n_a} and {n_b}"
        )
    mean_a, mean_b = mean(list(samples_a)), mean(list(samples_b))
    var_a = sum((x - mean_a) ** 2 for x in samples_a) / (n_a - 1)
    var_b = sum((x - mean_b) ** 2 for x in samples_b) / (n_b - 1)
    pooled = var_a / n_a + var_b / n_b
    if pooled == 0.0:
        return 0.0, float(n_a + n_b - 2), 1.0
    t = (mean_a - mean_b) / math.sqrt(pooled)
    dof = pooled**2 / (
        (var_a / n_a) ** 2 / (n_a - 1) + (var_b / n_b) ** 2 / (n_b - 1)
    )
    p = 2.0 * float(_scipy_stats.t.sf(abs(t), dof))
    return t, dof, p


def holm_correction(p_values: Sequence[float]) -> List[float]:
    """Holm-Bonferroni adjusted p-values, in the input order.

    Step-down procedure: sort the ``m`` raw p-values ascending, scale
    the ``i``-th smallest by ``m - i`` (0-based), enforce monotonicity
    with a running maximum, and clip at 1.  Rejecting where
    ``adjusted < alpha`` reproduces Holm's sequential test exactly, and
    controls the family-wise error rate at ``alpha`` under arbitrary
    dependence between the tests -- important here, where every
    comparison shares the incumbent cell.
    """
    m = len(p_values)
    if m == 0:
        return []
    for p in p_values:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p-values must lie in [0, 1], got {p!r}")
    order = sorted(range(m), key=lambda i: p_values[i])
    adjusted = [0.0] * m
    running = 0.0
    for rank, index in enumerate(order):
        running = max(running, (m - rank) * p_values[index])
        adjusted[index] = min(1.0, running)
    return adjusted


def holm_adjust(comparisons: Sequence[Comparison]) -> List[Comparison]:
    """One family of comparisons with ``p_adjusted`` filled in (Holm).

    The input order is preserved; each returned :class:`Comparison` is
    a copy whose :meth:`Comparison.significant` now judges the
    family-wise corrected p-value.
    """
    adjusted = holm_correction([c.p_value for c in comparisons])
    return [
        replace(comparison, p_adjusted=p)
        for comparison, p in zip(comparisons, adjusted)
    ]


def compare_aggregates(
    a: "AggregateResult",
    b: "AggregateResult",
    metric: str,
) -> Comparison:
    """Compare one aggregated metric between two policies' replications."""
    samples_a = [float(run.summary.as_dict()[metric]) for run in a.runs]
    samples_b = [float(run.summary.as_dict()[metric]) for run in b.runs]
    if not samples_a or not samples_b:
        raise ValueError(
            "both aggregates must retain their runs (keep_runs=True) "
            "to be compared"
        )
    t, dof, p = welch_t_test(samples_a, samples_b)
    return Comparison(
        metric=metric,
        label_a=a.label,
        label_b=b.label,
        mean_a=mean(samples_a),
        mean_b=mean(samples_b),
        difference=mean(samples_a) - mean(samples_b),
        t_statistic=t,
        degrees_of_freedom=dof,
        p_value=p,
    )
