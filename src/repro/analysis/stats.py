"""Statistics helpers used across metrics, experiments and benches.

Everything here is dependency-free pure Python; numpy is available in
the environment but these run on small samples inside hot loops where
conversion overhead would dominate.

Two conventions worth knowing before building on this module (the
sweep digest and its significance annotations lean on both):

* :func:`stdev` and :attr:`Welford.variance` are **population**
  moments (divide by ``n``) -- they describe the spread of the data at
  hand, e.g. the ``mean ± stdev`` cells of comparison tables.  The
  **sample** variance with Bessel's correction (divide by ``n - 1``),
  needed when the replications stand in for an infinite population of
  seeds, is computed where inference happens:
  :func:`repro.analysis.significance.welch_t_test` applies the
  correction itself from the raw samples.
* :class:`Welford` accumulators compose: two accumulators built over
  disjoint sample streams (e.g. in different worker processes) merge
  into one that is numerically equivalent to having seen every sample
  in a single pass -- see :meth:`Welford.merge`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence


def mean(values: Sequence[float], default: float = 0.0) -> float:
    """Arithmetic mean; ``default`` for an empty sequence."""
    if not values:
        return default
    return sum(values) / len(values)


def median(values: Sequence[float], default: float = 0.0) -> float:
    """Median; ``default`` for an empty sequence."""
    if not values:
        return default
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float, default: float = 0.0) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        return default
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def stdev(values: Sequence[float], default: float = 0.0) -> float:
    """Population standard deviation; ``default`` for fewer than 2 samples."""
    if len(values) < 2:
        return default
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution.

    0 means perfectly even (every provider did the same work), values
    toward 1 mean concentration.  Used as the load-balance metric of
    Scenario 5 ("balances better queries among volunteers").
    """
    if not values:
        return 0.0
    if any(v < 0 for v in values):
        raise ValueError("gini requires non-negative values")
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    # Standard formula: G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n
    weighted = sum((i + 1) * x for i, x in enumerate(ordered))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


class Welford:
    """Streaming mean/variance accumulator (Welford's algorithm).

    Used where storing every sample would be wasteful, e.g. per-window
    throughput accounting in long runs.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of samples so far (0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0 with fewer than 2 samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stdev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "Welford") -> "Welford":
        """Combine two accumulators (parallel merge); returns a new one.

        Implements the Chan et al. parallel update: with
        ``delta = mean_b - mean_a``, the merged sum of squared
        deviations is ``m2_a + m2_b + delta^2 * n_a * n_b / n`` -- the
        within-part spreads plus the between-part separation.  The
        result is numerically equivalent to :meth:`add`-ing every
        sample into a single accumulator (exactly equal counts/means,
        variance equal up to floating-point rounding), which is what
        lets per-worker accumulators from a parallel session or sweep
        be folded without re-reading samples.  Neither operand is
        mutated; empty accumulators are identities of the merge.
        """
        merged = Welford()
        if self.count == 0:
            merged.count, merged._mean, merged._m2 = other.count, other._mean, other._m2
            merged.minimum, merged.maximum = other.minimum, other.maximum
            return merged
        if other.count == 0:
            merged.count, merged._mean, merged._m2 = self.count, self._mean, self._m2
            merged.minimum, merged.maximum = self.minimum, self.maximum
            return merged
        count = self.count + other.count
        delta = other._mean - self._mean
        merged.count = count
        merged._mean = self._mean + delta * other.count / count
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self.count * other.count / count
        )
        merged.minimum = min(self.minimum, other.minimum)  # type: ignore[arg-type]
        merged.maximum = max(self.maximum, other.maximum)  # type: ignore[arg-type]
        return merged

    def __repr__(self) -> str:
        return f"Welford(count={self.count}, mean={self.mean:.4g}, stdev={self.stdev:.4g})"


@dataclass(frozen=True)
class DistributionSummary:
    """The descriptive statistics the benches report for a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize_distribution(values: Sequence[float]) -> DistributionSummary:
    """Build a :class:`DistributionSummary` (all zeros for empty input)."""
    if not values:
        return DistributionSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return DistributionSummary(
        count=len(values),
        mean=mean(values),
        stdev=stdev(values),
        minimum=min(values),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
        maximum=max(values),
    )
