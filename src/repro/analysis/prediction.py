"""Departure prediction: Scenario 2's claim, made quantitative.

The paper: "using our satisfaction model one can predict possible
participant's departure by dissatisfaction."  This module evaluates
that as a classification task: *predict* that every provider whose
satisfaction sits below the threshold at observation time ``t0`` will
leave, then compare against who actually left afterwards.

Needs per-provider snapshots
(:meth:`repro.metrics.collectors.MetricsHub.enable_provider_snapshots`
or ``ExperimentConfig.track_provider_snapshots``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.collectors import MetricsHub
    from repro.system.registry import SystemRegistry


@dataclass(frozen=True)
class PredictionReport:
    """Confusion-matrix summary of the dissatisfaction predictor."""

    observed_at: float
    threshold: float
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def population(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )

    @property
    def precision(self) -> float:
        """Of the providers flagged as leavers, how many actually left."""
        flagged = self.true_positives + self.false_positives
        if flagged == 0:
            return 0.0
        return self.true_positives / flagged

    @property
    def recall(self) -> float:
        """Of the providers that left, how many the flag caught."""
        actual = self.true_positives + self.false_negatives
        if actual == 0:
            return 0.0
        return self.true_positives / actual

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    @property
    def base_rate(self) -> float:
        """Fraction of the population that left -- the accuracy of a
        'predict everyone leaves' guesser; precision must beat it for
        the satisfaction signal to carry information."""
        if self.population == 0:
            return 0.0
        return (self.true_positives + self.false_negatives) / self.population

    def format(self) -> str:
        return (
            f"departure prediction @ t={self.observed_at:.0f} "
            f"(threshold {self.threshold}): "
            f"precision={self.precision:.2f}, recall={self.recall:.2f}, "
            f"f1={self.f1:.2f}, base rate={self.base_rate:.2f} "
            f"[tp={self.true_positives} fp={self.false_positives} "
            f"fn={self.false_negatives} tn={self.true_negatives}]"
        )


def predict_departures(
    hub: "MetricsHub",
    registry: "SystemRegistry",
    threshold: float = 0.35,
    observe_at: Optional[float] = None,
) -> PredictionReport:
    """Evaluate the dissatisfaction-below-threshold predictor.

    Parameters
    ----------
    hub:
        Metrics hub with provider snapshots enabled.
    registry:
        End-of-run registry (who is still online).
    threshold:
        Satisfaction below which a provider is flagged.
    observe_at:
        Snapshot time to predict from; defaults to the first snapshot
        after one quarter of the recorded timeline (past the cold
        start, early enough that most departures lie ahead).

    Providers already offline at the observation instant are excluded
    -- there is nothing left to predict about them.
    """
    if not hub.provider_snapshots:
        raise ValueError(
            "no provider snapshots recorded; enable_provider_snapshots() "
            "(or ExperimentConfig.track_provider_snapshots) is required"
        )
    times = [t for t, _ in hub.provider_snapshots]
    if observe_at is None:
        observe_at = times[0] + (times[-1] - times[0]) / 4.0
    snapshot_time, snapshot = next(
        ((t, s) for t, s in hub.provider_snapshots if t >= observe_at),
        hub.provider_snapshots[-1],
    )

    departed_after: Dict[str, bool] = {}
    for provider in registry.providers:
        if provider.left_at is not None and provider.left_at <= snapshot_time:
            continue  # already gone when we observed; nothing to predict
        departed_after[provider.participant_id] = not provider.online

    tp = fp = fn = tn = 0
    for pid, left in departed_after.items():
        flagged = snapshot.get(pid, 1.0) < threshold
        if flagged and left:
            tp += 1
        elif flagged and not left:
            fp += 1
        elif not flagged and left:
            fn += 1
        else:
            tn += 1
    return PredictionReport(
        observed_at=snapshot_time,
        threshold=threshold,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
    )
