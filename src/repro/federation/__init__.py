"""Sharded multi-mediator federation (consistent-hash partitioning).

Public surface:

* :class:`~repro.federation.config.FederationConfig` -- the scenario
  knob (shard count, partition mode, forward threshold);
* :class:`~repro.federation.ring.ShardMap` /
  :class:`~repro.federation.ring.ShardRing` -- the sha1 consistent-hash
  shard map (PYTHONHASHSEED-immune, O(1) amortized routing);
* :func:`~repro.federation.mediator.build_federation` -- assemble the
  shard registries + mediators over a populated global registry;
* :class:`~repro.federation.mediator.FederatedMediator` -- the
  consumer-facing front, a drop-in for a single mediator.
"""

from repro.federation.config import PARTITION_MODES, FederationConfig
from repro.federation.mediator import (
    EventShardMediator,
    Federation,
    FederatedMediator,
    ShardMediator,
    build_federation,
)
from repro.federation.ring import ShardMap, ShardRing

__all__ = [
    "PARTITION_MODES",
    "FederationConfig",
    "EventShardMediator",
    "Federation",
    "FederatedMediator",
    "ShardMediator",
    "build_federation",
    "ShardMap",
    "ShardRing",
]
