"""Sharded multi-mediator federation (consistent-hash partitioning).

Public surface:

* :class:`~repro.federation.config.FederationConfig` -- the scenario
  knob (shard count, partition mode, forward threshold);
* :class:`~repro.federation.ring.ShardMap` /
  :class:`~repro.federation.ring.ShardRing` -- the sha1 consistent-hash
  shard map (PYTHONHASHSEED-immune, O(1) amortized routing);
* :func:`~repro.federation.mediator.build_federation` -- assemble the
  shard registries + mediators over a populated global registry;
* :class:`~repro.federation.mediator.FederatedMediator` -- the
  consumer-facing front, a drop-in for a single mediator;
* :func:`~repro.federation.parallel.run_parallel` -- process-parallel
  shard-group execution with a deterministic (digest-identical) merge.
"""

from repro.federation.config import PARTITION_MODES, FederationConfig
from repro.federation.mediator import (
    EventShardMediator,
    Federation,
    FederatedMediator,
    ShardMediator,
    build_federation,
)
from repro.federation.parallel import (
    ParallelRunReport,
    ParallelViolation,
    ShardSlice,
    parallel_ineligible_reason,
    plan_groups,
    run_parallel,
)
from repro.federation.ring import ShardMap, ShardRing

__all__ = [
    "PARTITION_MODES",
    "FederationConfig",
    "EventShardMediator",
    "Federation",
    "FederatedMediator",
    "ShardMediator",
    "build_federation",
    "ParallelRunReport",
    "ParallelViolation",
    "ShardSlice",
    "parallel_ineligible_reason",
    "plan_groups",
    "run_parallel",
    "ShardMap",
    "ShardRing",
]
