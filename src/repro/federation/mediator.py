"""Sharded multi-mediator federation.

One mediator owning the whole provider population is the scaling
ceiling: every mediation walks one registry and one scheduler.  The
federation splits the population across ``K`` shard mediators (the
:class:`~repro.federation.ring.ShardMap` decides who owns whom), routes
each query to its topic's home shard in O(1), and *forwards*
cross-shard only when the home shard's capable pool is thinner than the
policy needs -- the ADQUEX-style lift of an adaptive allocator into a
sharded topology.

Invariants
----------
1. **K=1 is the identity.**  With one shard, shard 0's registry holds
   every provider in global registration order, shard 0's policy is
   built from the *unprefixed* random root, every query routes to shard
   0, and forwarding never triggers -- so the run is bit-identical
   (same digests) to the unsharded mediator.  Asserted per scenario
   preset by ``tests/federation/test_parity.py``.
2. **Routing and forwarding are hash-seed independent.**  The ring
   hashes with sha1; merged candidate lists concatenate the home
   shard's snapshot with the peer snapshots in ascending shard-ordinal
   order; every per-shard snapshot is in that shard's registration
   order.  No step consults the builtin ``hash``.
3. **Forwarding cost is one extra consultation hop.**  A forwarded
   mediation consults the contributing peer shards (one request/reply
   pair each, counted in ``coordination_messages``); for consulting
   policies the hop extends the consultation delay by the worst peer
   round-trip (``2c`` under a constant latency model -- the same
   analytic collapse the fast engine uses, so the hot path stays
   fused).  Non-consulting policies pay the messages but no delay,
   mirroring how the base mediator charges consultation.
4. **The global mediation order is preserved.**  All shard mediators
   append to one shared ``records`` list and report to one observer,
   so downstream analysis sees the same stream a single mediator would
   produce.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.engine import FastMediator, resolve_engine
from repro.core.mediator import Mediator
from repro.core.policy import AllocationContext
from repro.des.entity import Entity
from repro.des.network import Message
from repro.des.tracing import NULL_RECORDER, TraceRecorder
from repro.federation.config import FederationConfig
from repro.federation.ring import ShardMap
from repro.system.registry import SystemRegistry


class _PrefixedRoot:
    """A :class:`~repro.des.rng.RandomRoot` view with a name prefix.

    Shard 0 uses the replication root itself (the K=1 parity
    requirement: identical stream names, identical draws); every other
    shard derives its policy streams under ``federation/shard<i>/`` so
    shards never share a sequence.
    """

    __slots__ = ("_root", "_prefix")

    def __init__(self, root, prefix: str) -> None:
        self._root = root
        self._prefix = prefix

    @property
    def seed(self) -> int:
        return self._root.seed

    def stream(self, name: str):
        return self._root.stream(self._prefix + name)

    def streams(self, names):
        return [self.stream(name) for name in names]

    def __repr__(self) -> str:
        return f"_PrefixedRoot({self._root!r}, prefix={self._prefix!r})"


class _ShardForwarding:
    """Mixin adding the cross-shard forwarding decision to a mediator.

    Mixed in *before* the engine's mediator class, so ``mediate`` sees
    every query first: if the federation is sharded and the home shard's
    capable pool is below the forward threshold, the mediation runs over
    the merged home+peer candidate pool; otherwise the engine's own
    (possibly fused) path runs untouched.
    """

    def __init__(
        self, *args, shard_ordinal: int = 0, federation: "Federation" = None, **kwargs
    ) -> None:
        kwargs.setdefault("name", f"mediator/shard{shard_ordinal}")
        super().__init__(*args, **kwargs)
        self.shard_ordinal = shard_ordinal
        self._federation = federation
        self._forward_peers: Tuple[int, ...] = ()
        self._forward_threshold_static = None
        #: Forwarded-mediation count for this shard (serve /metrics
        #: surfaces it per shard so dashboards can show imbalance).
        self.forwarded = 0

    def mediate(self, query):
        federation = self._federation
        if federation is not None and federation.forwarding_active:
            topic = query.topic
            local = self.registry.capable_snapshot(topic)
            if len(local) < federation.forward_threshold_for(self, query):
                merged, peers = federation.merged_candidates(self.shard_ordinal, topic)
                if peers:
                    guard = federation.foreign_guard
                    if guard is not None:
                        guard(self.shard_ordinal, peers)
                    return self._mediate_forwarded(query, merged, peers)
        return super().mediate(query)

    def _mediate_forwarded(self, query, merged, peers):
        """One mediation over the merged home+peer candidate pool."""
        self.mediations += 1
        self.forwarded += 1
        # One candidate request/reply pair per contributing peer shard.
        self.coordination_messages += 2 * len(peers)
        decision = self._forward_select(query, merged)
        if not decision.allocated:
            return self._fail(query)
        # _consultation_delay (called from _commit for consulting
        # policies) must see the peer set to add the forward hop.
        self._forward_peers = peers
        try:
            return self._commit(query, merged, decision)
        finally:
            self._forward_peers = ()

    def _forward_select(self, query, merged):  # pragma: no cover - abstract
        raise NotImplementedError

    def _consultation_delay(self, consumer, informed) -> float:
        delay = super()._consultation_delay(consumer, informed)
        if self._forward_peers:
            delay += self._forward_hop(self._forward_peers)
        return delay

    def _forward_hop(self, peers: Sequence[int]) -> float:
        """The extra consultation hop of one forwarded mediation.

        Parallel round-trips to the contributing peer mediators; the
        slowest pair gates, exactly like provider consultation.  Under
        a deterministic pair-independent latency model the hop is ``2c``
        analytically (no draws); otherwise the draws happen in shard-
        ordinal order -- ``peers`` is ascending by construction -- so
        the stream consumption is deterministic.
        """
        latency = self.network.latency
        c = latency.constant_delay()
        if c is not None:
            return c + c
        mediators = self._federation.mediators
        worst = 0.0
        for ordinal in peers:
            peer = mediators[ordinal]
            rtt = latency.delay(self, peer) + latency.delay(peer, self)
            if rtt > worst:
                worst = rtt
        return worst


class ShardMediator(_ShardForwarding, FastMediator):
    """One federation shard on the fast engine."""

    def _forward_select(self, query, merged):
        if self.trace.enabled:
            return self.policy.select(
                query, merged, AllocationContext(now=self.now, trace=self.trace)
            )
        ctx = self._ctx
        ctx.now = self.now
        return self._fast_select(query, merged, ctx)


class EventShardMediator(_ShardForwarding, Mediator):
    """One federation shard on the event-faithful engine."""

    def _forward_select(self, query, merged):
        return self._select(
            query, merged, AllocationContext(now=self.now, trace=self.trace)
        )


class Federation:
    """The shard topology: map, per-shard registries, shard mediators.

    Owns no simulation behaviour of its own -- it answers the two
    routing questions (*which shard owns this topic*, *what is the
    merged candidate pool for a forwarded query*) and aggregates the
    shard mediators' counters for reporting.
    """

    def __init__(self, config: FederationConfig, shard_map: ShardMap) -> None:
        self.config = config
        self.shard_map = shard_map
        self.registries: List[SystemRegistry] = []
        self.mediators: List[Mediator] = []
        self._route_memo: Dict[str, Mediator] = {}
        # (home, topic) -> (per-shard registry versions, merged, peers)
        self._merge_cache: Dict[Tuple[int, str], tuple] = {}
        #: Optional hook ``guard(home_ordinal, peer_ordinals)`` called
        #: before every forwarded mediation.  The parallel runner
        #: installs one per worker to detect cross-worker forwarding
        #: (which a slice cannot serve) and abort to the serial path.
        self.foreign_guard: Optional[Callable[[int, Tuple[int, ...]], None]] = None

    @property
    def shards(self) -> int:
        return self.config.shards

    @property
    def forwarding_active(self) -> bool:
        """Forwarding only exists with more than one shard (K=1 parity)."""
        return self.config.shards > 1

    def route(self, topic: str) -> Mediator:
        """Home shard mediator of ``topic`` -- one dict probe after warmup."""
        mediator = self._route_memo.get(topic)
        if mediator is None:
            mediator = self.mediators[self.shard_map.shard_of_topic(topic)]
            self._route_memo[topic] = mediator
        return mediator

    def forward_threshold_for(self, mediator: Mediator, query) -> int:
        """Capable-pool size below which the home shard forwards.

        The configured threshold when set; otherwise the policy's
        KnBest ``kn`` (the pool the selection actually needs), falling
        back to the query's replica count for selector-less policies.
        The config/policy part is fixed for a given config object, so
        it is resolved once per mediator and cached (this runs on every
        mediation of every shard).
        """
        cached = mediator._forward_threshold_static
        if cached is None or cached[0] is not self.config:
            threshold = self.config.forward_threshold
            if threshold is None:
                selector = getattr(mediator.policy, "selector", None)
                threshold = getattr(selector, "kn", None)
            cached = (self.config, threshold)
            mediator._forward_threshold_static = cached
        static = cached[1]
        if static is not None:
            return static
        return query.n_results

    def merged_candidates(self, home: int, topic: str) -> Tuple[tuple, Tuple[int, ...]]:
        """The forwarded candidate pool of ``topic`` seen from ``home``.

        Home shard's snapshot first (local providers keep their usual
        sample ordinals), then each contributing peer's snapshot in
        ascending shard-ordinal order.  ``peers`` lists the contributing
        ordinals (ascending).  Cached per ``(home, topic)`` against the
        tuple of peer registry *versions*: any membership or
        online-state transition on any shard bumps that shard's version
        and invalidates the pool, so mid-run churn can never serve a
        stale merged pool.  Between transitions a forwarded mediation
        pays one dict probe and a K-tuple compare -- no snapshot
        fetches at all.
        """
        versions = tuple(r.version for r in self.registries)
        key = (home, topic)
        cached = self._merge_cache.get(key)
        if cached is not None and cached[0] == versions:
            return cached[1], cached[2]
        snapshots = tuple(r.capable_snapshot(topic) for r in self.registries)
        pool = list(snapshots[home])
        peers: List[int] = []
        for ordinal, snapshot in enumerate(snapshots):
            if ordinal == home or not snapshot:
                continue
            peers.append(ordinal)
            pool.extend(snapshot)
        merged = tuple(pool)
        peers_t = tuple(peers)
        self._merge_cache[key] = (versions, merged, peers_t)
        return merged, peers_t

    def __repr__(self) -> str:
        return f"Federation(shards={self.shards}, partition={self.config.partition!r})"


class FederatedMediator(Entity):
    """The consumer-facing front of a federation.

    Consumers attach to this entity exactly as they would to a single
    mediator; each query is routed to its topic's home shard in O(1).
    The aggregate counters (``mediations``, ``failures``,
    ``coordination_messages``) and the shared ``records`` list make the
    facade a drop-in for everything downstream (metrics, summaries,
    reports).
    """

    #: Fast-engine direct delivery (see Entity.FAST_HANDLERS).
    FAST_HANDLERS = {"query": "mediate"}

    def __init__(
        self,
        sim,
        network,
        registry: SystemRegistry,
        federation: Federation,
        name: str = "mediator/federated",
    ) -> None:
        super().__init__(sim, name=name)
        self.network = network
        #: The *global* registry (all shards); reports and metric
        #: samplers read population-wide state through this.
        self.registry = registry
        self.federation = federation
        #: Shared across every shard mediator, so appends interleave in
        #: global mediation order.
        self.records = federation.mediators[0].records

    def receive(self, message: Message) -> None:
        if message.kind != "query":
            raise ValueError(f"mediator got unexpected message {message.kind!r}")
        self.mediate(message.payload)

    def mediate(self, query):
        """Route one query to its home shard and mediate there."""
        return self.federation.route(query.topic).mediate(query)

    # -- aggregate counters (summary/report compatibility) --------------

    @property
    def policy(self):
        """The shard policies are clones; expose shard 0's for display."""
        return self.federation.mediators[0].policy

    @property
    def mediations(self) -> int:
        return sum(m.mediations for m in self.federation.mediators)

    @property
    def failures(self) -> int:
        return sum(m.failures for m in self.federation.mediators)

    @property
    def coordination_messages(self) -> int:
        return sum(m.coordination_messages for m in self.federation.mediators)

    @property
    def forwarded(self) -> int:
        return sum(m.forwarded for m in self.federation.mediators)

    def __repr__(self) -> str:
        return (
            f"FederatedMediator(shards={self.federation.shards}, "
            f"mediations={self.mediations}, failures={self.failures})"
        )


def build_federation(
    engine: str,
    sim,
    network,
    registry: SystemRegistry,
    config: FederationConfig,
    policy_factory: Callable[[object], object],
    root,
    observer=None,
    trace: TraceRecorder = NULL_RECORDER,
    adequation_over_candidates: bool = False,
    keep_records: bool = True,
) -> FederatedMediator:
    """Assemble a federation over an already-populated global registry.

    ``policy_factory(shard_root)`` must build one fresh policy from the
    given random root; shard 0 receives ``root`` itself (K=1 parity),
    shard ``i>0`` a ``federation/shard<i>/``-prefixed view.  Providers
    keep their global registration (metrics and summaries read the
    global registry); each also joins its home shard's registry, whose
    transition hooks keep the shard snapshots current through churn.
    """
    shard_map = ShardMap(config)
    federation = Federation(config, shard_map)

    capabilities = registry._capabilities
    shard_registries = [SystemRegistry() for _ in range(config.shards)]
    for pid, provider in registry._providers.items():
        topics = capabilities.get(pid)
        home = shard_map.shard_of_provider(pid, topics)
        shard_registries[home].add_provider(provider, topics=topics)
    federation.registries = shard_registries

    engine_key = resolve_engine(engine)
    mediator_cls = ShardMediator if engine_key == "fast" else EventShardMediator
    for ordinal in range(config.shards):
        shard_root = (
            root if ordinal == 0 else _PrefixedRoot(root, f"federation/shard{ordinal}/")
        )
        mediator = mediator_cls(
            sim,
            network,
            shard_registries[ordinal],
            policy_factory(shard_root),
            observer=observer,
            trace=trace,
            adequation_over_candidates=adequation_over_candidates,
            keep_records=keep_records,
            shard_ordinal=ordinal,
            federation=federation,
        )
        federation.mediators.append(mediator)

    # One records list, appended to in global mediation order.
    shared_records = federation.mediators[0].records
    for mediator in federation.mediators[1:]:
        mediator.records = shared_records

    return FederatedMediator(sim, network, registry, federation)
