"""Declarative federation settings: how many mediators, how to shard.

A :class:`FederationConfig` is a *scenario* knob, not execution
metadata: with more than one shard each mediator only observes a slice
of the provider population (and of its satisfaction history), so the
allocation outcomes -- and therefore the result digests -- legitimately
differ from the single-mediator run.  That is why, unlike the
``engine`` field, the federation block **is** part of
:meth:`repro.api.spec.ExperimentSpec.to_dict` and sweepable through
``federation.shards`` axes.

``shards=1`` is the degenerate federation: one shard owning every
provider in registration order, routed to for every query, never
forwarding -- byte-identical digests to the unsharded mediator (the
parity invariant asserted by ``tests/federation/test_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Provider-partitioning strategies accepted by :class:`FederationConfig`.
PARTITION_MODES = ("hash", "topic")


@dataclass(frozen=True)
class FederationConfig:
    """How the provider population is split across mediator shards.

    Parameters
    ----------
    shards:
        Number of mediator shards (>= 1).  ``1`` reproduces the
        single-mediator run bit for bit.
    partition:
        ``"hash"`` places every provider on the consistent-hash ring by
        its ``participant_id``; ``"topic"`` co-locates topic-restricted
        providers with their home topic's shard (unrestricted providers
        still ring-hash by id -- they can serve any shard's queries).
        Queries always route by the ring position of their topic.
    forward_threshold:
        Home-shard capable-pool size below which the mediation consults
        the other shards (one extra hop).  ``None`` resolves per query:
        the policy's KnBest ``kn`` when it has one, else the query's
        ``n_results``.
    virtual_nodes:
        Ring points per shard; more points smooth the partition at the
        cost of a larger (still tiny) ring.
    """

    shards: int = 1
    partition: str = "hash"
    forward_threshold: Optional[int] = None
    virtual_nodes: int = 64

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.partition not in PARTITION_MODES:
            raise ValueError(
                f"unknown partition mode {self.partition!r}; "
                f"valid modes: {', '.join(PARTITION_MODES)}"
            )
        if self.forward_threshold is not None and self.forward_threshold < 1:
            raise ValueError(
                f"forward_threshold must be >= 1 when set, "
                f"got {self.forward_threshold}"
            )
        if self.virtual_nodes < 1:
            raise ValueError(
                f"virtual_nodes must be >= 1, got {self.virtual_nodes}"
            )
