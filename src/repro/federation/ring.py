"""The shard map: consistent-hash provider partitioning.

Routing must be deterministic across processes (PYTHONHASHSEED must
not matter) and O(1) amortized on the mediation hot path, so the ring

* hashes with :func:`hashlib.sha1` (never the builtin ``hash``), taking
  the first 8 bytes of the digest as the ring position;
* places ``virtual_nodes`` points per shard to smooth the partition;
* resolves lookups with :func:`bisect.bisect_right` over the sorted
  point list and memoizes every key it has ever resolved, so steady
  traffic pays one dict probe per route.

Two partition modes (:class:`~repro.federation.config.FederationConfig`):

``"hash"``
    Every provider rings by its ``participant_id``; queries ring by
    topic.  Shards get statistically even slices of the population.
``"topic"``
    Topic-restricted providers co-locate with their home topic -- the
    lexicographically first declared topic, hashed exactly like a query
    topic -- so topic-local queries find their capable providers
    without forwarding.  Unrestricted providers (capable of any topic)
    still ring by id: no single shard could "own" them.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

from repro.federation.config import FederationConfig


def _ring_position(key: str) -> int:
    """Position of ``key`` on the ring: first 8 sha1 bytes, big-endian.

    Process-independent by construction (PYTHONHASHSEED-immune), unlike
    the builtin ``hash``.
    """
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRing:
    """Consistent-hash ring over ``shards`` shard ordinals.

    Immutable once built; lookups are memoized per key string, so the
    per-route cost after warmup is one dict probe.
    """

    def __init__(self, shards: int, virtual_nodes: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.virtual_nodes = virtual_nodes
        points: List[Tuple[int, int]] = []
        for ordinal in range(shards):
            for vnode in range(virtual_nodes):
                points.append((_ring_position(f"shard{ordinal}:vnode{vnode}"), ordinal))
        # Ties between distinct vnode labels are astronomically unlikely
        # but must still resolve deterministically: sort on the pair.
        points.sort()
        self._positions = [pos for pos, _ in points]
        self._owners = [ordinal for _, ordinal in points]
        self._memo: Dict[str, int] = {}

    def shard_of(self, key: str) -> int:
        """Shard ordinal owning ``key`` (memoized)."""
        if self.shards == 1:
            return 0
        memo = self._memo
        ordinal = memo.get(key)
        if ordinal is None:
            slot = bisect_right(self._positions, _ring_position(key))
            if slot == len(self._positions):  # wrap around the ring
                slot = 0
            ordinal = self._owners[slot]
            memo[key] = ordinal
        return ordinal

    def __repr__(self) -> str:
        return f"ShardRing(shards={self.shards}, virtual_nodes={self.virtual_nodes})"


class ShardMap:
    """Routing decisions of one federation: providers and topics to shards.

    Wraps a :class:`ShardRing` with the partition-mode logic of
    :class:`~repro.federation.config.FederationConfig`.  Query routing
    is always by topic; provider placement depends on the mode.
    """

    def __init__(self, config: FederationConfig) -> None:
        self.config = config
        self.ring = ShardRing(config.shards, config.virtual_nodes)

    @property
    def shards(self) -> int:
        return self.config.shards

    def shard_of_topic(self, topic: str) -> int:
        """Home shard of queries for ``topic`` -- the O(1) routing step."""
        return self.ring.shard_of(f"topic:{topic}")

    def shard_of_provider(
        self, participant_id: str, topics: Optional[Iterable[str]] = None
    ) -> int:
        """Home shard of one provider.

        ``topics`` is the provider's declared capability set (``None``
        for unrestricted providers, matching
        :meth:`repro.system.registry.SystemRegistry.add_provider`).
        """
        if self.config.shards == 1:
            return 0
        if self.config.partition == "topic" and topics:
            # Co-locate with the home topic so its queries stay local.
            # min() over the declared topics is hash-order-independent.
            return self.shard_of_topic(min(topics))
        return self.ring.shard_of(f"provider:{participant_id}")

    def __repr__(self) -> str:
        return (
            f"ShardMap(shards={self.config.shards}, "
            f"partition={self.config.partition!r})"
        )
