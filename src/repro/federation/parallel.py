"""Process-parallel shard execution with a deterministic merge.

PR 9's federation routes queries across ``K`` shard mediators but still
executes every shard interleaved on one scheduler in one interpreter.
This module runs each shard *group* in its own worker process with its
own :class:`~repro.des.scheduler.Simulator`, then merges the per-shard
outcome streams in the parent so the final
:class:`~repro.metrics.summary.RunSummary` -- and therefore the run
digest -- is **bit-for-bit identical** to the single-process run.

Why this is possible without inter-worker traffic
-------------------------------------------------
Every source of randomness is a *named* stream off the replication
root, and every named stream is an independent generator.  Each worker
performs the **full world wiring** (identical population draw,
identical per-shard policy construction, identical stream names) and
then *activates* only its slice:

* arrival processes are started only for consumers whose query topic
  hashes to an owned shard (a consumer's topic is its own id, so
  ownership and routing coincide exactly);
* the churn monitor sweeps only owned participants (the departure
  policy is deterministic per participant -- no shared stream);
* the metric sampler records raw per-participant rows for owned
  participants instead of global aggregates.

Since a query's entire lifecycle (arrival draw, demand draw, mediation
draws of its home shard's policy stream, satisfaction updates, result
delivery, completion, timeout) touches only owned state, each worker
reproduces exactly the sub-trajectory of the serial run restricted to
its shards: the same floats, in the same per-shard order.

Conservative synchronization
----------------------------
Workers advance in conservative epochs.  Under the constant latency
model ``c`` (the only model the parallel path accepts), a cross-shard
forwarding consultation issued at time ``t`` cannot affect a peer
earlier than ``t + 2c`` (request hop + reply hop), so ``2c`` is the
lookahead and the epoch width: a worker may execute every event in
``[t, t + 2c)`` without waiting for peer input.  Message/record batches
are flushed to the parent at epoch barriers over pipes (coalesced so a
short epoch does not mean a syscall per ``2c``).

In-group forwarding (home shard and contributing peers in the same
worker) is executed natively and is bit-identical to serial.
*Cross-group* forwarding cannot be served by a slice, so the federation
gets a ``foreign_guard`` hook: the moment a forwarded mediation would
consult an out-of-group peer, the worker raises
:class:`ParallelViolation`, the parent stops the fleet and transparently
re-runs the configuration serially (correct result, parallelism
forfeited).  The guard is *conservative-safe*: a worker's view of
out-of-group shards is their initial membership with every provider
online -- a superset of the serial run's view at any instant (churn only
removes) -- so whenever the serial run would have forwarded across the
group boundary, the worker's guard fires too.

Deterministic merge
-------------------
Workers timestamp every outcome (mediation, completion, timeout) with
``(sim time, global consumer ordinal)`` and stream raw per-participant
sample rows on the shared sample grid.  The parent

1. merges the event streams by ``(time, consumer ordinal)`` -- within a
   worker the stream is already in firing order; across workers,
   same-instant collisions would need two continuous-time draws to be
   exactly equal (measure zero, see ``docs/architecture.md``);
2. repopulates a real :class:`~repro.metrics.collectors.MetricsHub`,
   replaying each sample instant with the *exact* serial arithmetic
   (``mean``/``stdev``/``gini`` over registration-ordered rows,
   ``_aggregate_sum`` for capacity) so every series float is identical
   to the last ulp;
3. rebuilds the final registry/mediator/network state from per-worker
   harvests (ownership is a partition, so each participant's final
   state comes from exactly one worker) and hands the result to the
   unmodified :func:`~repro.metrics.summary.build_summary`.

Integer counters (messages, mediations, coordination messages) are sums
of disjoint slices -- exact.  Float reductions re-run in serial order --
exact.  The resulting digest equals the serial digest.
"""

from __future__ import annotations

import heapq
import multiprocessing
import traceback
from multiprocessing import connection as _mp_connection
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import gini, mean, stdev
from repro.des.events import make_repeating
from repro.metrics.collectors import MetricsHub

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: repro.experiments.config itself
    # imports this package, so a top-level import would be circular.
    from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.metrics.summary import build_summary
from repro.system.registry import _aggregate_sum
from repro.workloads.preferences import ARCHETYPES


class ParallelViolation(RuntimeError):
    """A worker hit state its slice cannot own (cross-group forwarding)."""


# ----------------------------------------------------------------------
# Eligibility and partitioning
# ----------------------------------------------------------------------


def parallel_ineligible_reason(config: ExperimentConfig) -> Optional[str]:
    """Why ``config`` cannot take the parallel path (None when it can).

    The conditions are exactly the preconditions of the determinism
    argument in the module docstring; anything else falls back to the
    serial runner, whose result is by definition correct.
    """
    if config.federation is None:
        return "no federation configured"
    if config.latency_low != config.latency_high:
        return (
            "random latency: pair-dependent draws interleave across shards "
            "on one shared stream"
        )
    if config.failures is not None:
        return "failure injection draws crash times from one shared stream"
    if config.keep_records:
        return "keep_records retains per-shard record lists the merge does not carry"
    if config.track_provider_snapshots:
        return "per-provider snapshot tracking is not sliced"
    if "fork" not in multiprocessing.get_all_start_methods():
        return "fork start method unavailable on this platform"
    return None


def plan_groups(shards: int, workers: int) -> Tuple[Tuple[int, ...], ...]:
    """Partition shard ordinals ``0..shards-1`` into contiguous groups.

    ``workers`` is clamped to ``shards``; the first ``shards % workers``
    groups take one extra shard.  Deterministic in both arguments.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    workers = min(workers, shards)
    base, extra = divmod(shards, workers)
    groups: List[Tuple[int, ...]] = []
    start = 0
    for i in range(workers):
        size = base + (1 if i < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return tuple(groups)


# ----------------------------------------------------------------------
# Worker-side slice wiring
# ----------------------------------------------------------------------


class _SliceHub(MetricsHub):
    """Worker-side hub: log timestamped outcome events, aggregate nothing.

    The parent replays the merged event stream into a real hub, so this
    subclass only records ``(kind, time, consumer ordinal, ...)`` rows.
    Departures/rejoins keep the base behaviour (their frozen dataclasses
    are picklable and shipped wholesale in the harvest)."""

    def __init__(self, sim, shard_slice: "ShardSlice") -> None:
        super().__init__()
        self._sim = sim
        self._shard_slice = shard_slice

    def record_mediation(self, record) -> None:
        shard_slice = self._shard_slice
        shard_slice.events.append(
            (
                "m",
                self._sim.now,
                shard_slice.consumer_ordinal[record.query.consumer_id],
                record.is_failure,
                0.0 if record.is_failure else record.consultation_delay,
            )
        )

    def record_completion(self, record) -> None:
        rt = record.response_time
        if rt is None:
            raise ValueError(
                f"completion recorded for incomplete query {record.query.qid}"
            )
        shard_slice = self._shard_slice
        shard_slice.events.append(
            (
                "c",
                self._sim.now,
                shard_slice.consumer_ordinal[record.query.consumer_id],
                rt,
            )
        )

    def record_timeout(self, record) -> None:
        shard_slice = self._shard_slice
        shard_slice.events.append(
            (
                "t",
                self._sim.now,
                shard_slice.consumer_ordinal[record.query.consumer_id],
            )
        )


class ShardSlice:
    """One worker's slice of a federated run, hooked into ``wire_run``.

    ``wire_run(..., shard_slice=slice)`` calls, in wiring order:

    1. :meth:`create_hub` -- the event-logging hub;
    2. :meth:`attach` -- ownership sets, the foreign-forwarding guard,
       and the group definitions the parent will need;
    3. :meth:`owns_consumer` -- gates arrival-process activation;
    4. :meth:`churn_members` -- the owned sublists for the churn monitor;
    5. :meth:`install_sampler` -- the raw-row sampler replacing
       ``hub.start_sampling`` at the same grid.
    """

    def __init__(self, group: Sequence[int], shards: int) -> None:
        self.group: Tuple[int, ...] = tuple(group)
        self.shards = shards
        #: Outcome events, flushed to the parent at epoch barriers.
        self.events: List[tuple] = []
        #: Raw sample rows ``(t, consumer rows, provider rows)``.
        self.samples: List[tuple] = []
        self.consumer_ordinal: Dict[str, int] = {}
        self.provider_ordinal: Dict[str, int] = {}
        self._owned_consumer_ids: set = set()
        self._owned_provider_ids: set = set()
        self._owned_consumers: List = []
        self._owned_providers: List = []
        self.group_defs: List[Tuple[str, str, List[str]]] = []
        self.federation = None

    def create_hub(self, sim) -> _SliceHub:
        return _SliceHub(sim, self)

    def attach(self, config, population, mediator, hub) -> None:
        federation = getattr(mediator, "federation", None)
        if federation is None:
            raise ValueError("shard_slice requires a federated mediator")
        self.federation = federation
        registry = population.registry
        self.consumer_ordinal = {
            c.participant_id: i for i, c in enumerate(registry.consumers)
        }
        self.provider_ordinal = {
            p.participant_id: i for i, p in enumerate(registry.providers)
        }

        owned = set(self.group)
        shard_map = federation.shard_map
        # A consumer's query topic defaults to its own id, so topic
        # routing and consumer ownership coincide exactly.
        self._owned_consumer_ids = {
            cid
            for cid in self.consumer_ordinal
            if shard_map.shard_of_topic(cid) in owned
        }
        self._owned_consumers = [
            c
            for c in registry.consumers
            if c.participant_id in self._owned_consumer_ids
        ]
        owned_pids = set()
        for ordinal in self.group:
            owned_pids.update(
                p.participant_id for p in federation.registries[ordinal].providers
            )
        self._owned_provider_ids = owned_pids
        self._owned_providers = [
            p for p in registry.providers if p.participant_id in owned_pids
        ]

        if len(owned) < federation.config.shards:
            def guard(home: int, peers: Tuple[int, ...]) -> None:
                for peer in peers:
                    if peer not in owned:
                        raise ParallelViolation(
                            f"shard {home} would forward to out-of-group "
                            f"shard {peer} (owned: {sorted(owned)})"
                        )

            federation.foreign_guard = guard

        # Group definitions, replicated from the serial wiring so the
        # parent registers them in the same order.  Identical in every
        # worker (full-world wiring); the parent keeps one copy.
        defs: List[Tuple[str, str, List[str]]] = [
            (f"consumer:{c.participant_id}", "consumer", [c.participant_id])
            for c in population.consumers
        ]
        for archetype in ARCHETYPES:
            members = [
                p.participant_id for p in population.providers_of_archetype(archetype)
            ]
            if members:
                defs.append((f"archetype:{archetype}", "provider", members))
        if config.population.focal_provider is not None:
            defs.append(
                (
                    "focal:provider",
                    "provider",
                    [config.population.focal_provider.participant_id],
                )
            )
        self.group_defs = defs

    def owns_consumer(self, consumer_id: str) -> bool:
        return consumer_id in self._owned_consumer_ids

    def churn_members(self, population) -> Tuple[list, list]:
        """Owned consumers/providers, relative population order preserved."""
        consumers = [
            c
            for c in population.consumers
            if c.participant_id in self._owned_consumer_ids
        ]
        providers = [
            p
            for p in population.providers
            if p.participant_id in self._owned_provider_ids
        ]
        return consumers, providers

    def install_sampler(self, sim, registry, interval: float) -> None:
        """Record raw owned-participant rows on the serial sample grid.

        Scheduled exactly like ``MetricsHub.start_sampling`` (repeating
        tick, first sample posted at ``t=0`` during wiring) so the grid
        instants -- and the tick chain's tie order against the churn
        chain -- match the serial run."""
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        consumers = [
            (self.consumer_ordinal[c.participant_id], c)
            for c in self._owned_consumers
        ]
        providers = [
            (self.provider_ordinal[p.participant_id], p)
            for p in self._owned_providers
        ]
        def sample() -> None:
            # Resolve the buffer per tick: epoch flushes rebind
            # ``self.samples`` to a fresh list after each send.
            self.samples.append(
                (
                    sim.now,
                    [(o, c.satisfaction, c.online) for o, c in consumers],
                    [
                        (o, p.satisfaction, p.utilization, p.online)
                        for o, p in providers
                    ],
                )
            )

        tick = make_repeating(sim.schedule_in, interval, sample)
        sim.schedule_in(0.0, tick, label="metrics:first-sample")


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _flush(conn, shard_slice: ShardSlice) -> None:
    if shard_slice.events or shard_slice.samples:
        conn.send(("batch", shard_slice.events, shard_slice.samples))
        shard_slice.events = []
        shard_slice.samples = []


def _harvest(live, shard_slice: ShardSlice) -> dict:
    """Final owned state, shipped to the parent after the last epoch."""
    federation = shard_slice.federation
    consumers = [
        (
            shard_slice.consumer_ordinal[c.participant_id],
            c.participant_id,
            c.online,
            c.satisfaction,
            c.stats.queries_issued,
            c.stats.queries_completed,
            c.stats.queries_failed,
            c.stats.mean_response_time,
            c.tracker.allocation_satisfaction(),
        )
        for c in shard_slice._owned_consumers
    ]
    providers = [
        (
            shard_slice.provider_ordinal[p.participant_id],
            p.participant_id,
            p.online,
            p.satisfaction,
            p.capacity,
            p.stats.work_units_done,
        )
        for p in shard_slice._owned_providers
    ]
    shards = [
        (
            ordinal,
            federation.mediators[ordinal].mediations,
            federation.mediators[ordinal].failures,
            federation.mediators[ordinal].coordination_messages,
            federation.mediators[ordinal].forwarded,
        )
        for ordinal in shard_slice.group
    ]
    return {
        "group": shard_slice.group,
        "consumers": consumers,
        "providers": providers,
        "shards": shards,
        "network": (live.network.messages_sent, live.network.messages_delivered),
        "departures": list(live.hub.departures),
        "rejoins": list(live.hub.rejoins),
        "groups": shard_slice.group_defs,
    }


def _worker_main(config, policy_spec, replication, group, conn, ctrl) -> None:
    """Run one shard group to the horizon in conservative epochs."""
    try:
        from repro.experiments.runner import wire_run

        shard_slice = ShardSlice(group, config.federation.shards)
        live = wire_run(
            config, policy_spec, replication=replication, shard_slice=shard_slice
        )
        sim = live.sim
        duration = config.duration
        # Lookahead: a forwarding consultation cannot affect a peer
        # earlier than now + 2c under constant latency c.  Degenerate
        # c=0 collapses to the sample interval (any positive width is
        # safe: the guard aborts before any cross-group effect exists).
        c = config.latency_low
        width = 2.0 * c if c > 0 else config.sample_interval
        # Coalesce pipe flushes: an epoch barrier every 2c would mean a
        # syscall storm for small c, and the parent only needs batches
        # often enough to bound worker memory and observe aborts.
        flush_every = max(width, duration / 128.0)
        next_flush = flush_every
        now = 0.0
        while now < duration:
            target = min(now + width, duration)
            sim.run_until(target)
            now = target
            if now >= next_flush or now >= duration:
                _flush(conn, shard_slice)
                next_flush = now + flush_every
                if ctrl.poll():
                    return  # parent told us to stop (a sibling aborted)
        conn.send(("done", _harvest(live, shard_slice)))
    except ParallelViolation as exc:
        conn.send(("violation", str(exc)))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent-side merge
# ----------------------------------------------------------------------


class _FinalStats:
    __slots__ = (
        "queries_issued",
        "queries_completed",
        "queries_failed",
        "mean_response_time",
        "work_units_done",
    )

    def __init__(self, issued=0, completed=0, failed=0, mean_rt=0.0, work=0.0):
        self.queries_issued = issued
        self.queries_completed = completed
        self.queries_failed = failed
        self.mean_response_time = mean_rt
        self.work_units_done = work


class _FinalTracker:
    __slots__ = ("_value",)

    def __init__(self, value: float) -> None:
        self._value = value

    def allocation_satisfaction(self) -> float:
        return self._value


class _FinalConsumer:
    __slots__ = ("participant_id", "online", "satisfaction", "stats", "tracker")

    def __init__(self, participant_id, online, satisfaction, stats, tracker):
        self.participant_id = participant_id
        self.online = online
        self.satisfaction = satisfaction
        self.stats = stats
        self.tracker = tracker


class _FinalProvider:
    __slots__ = ("participant_id", "online", "satisfaction", "capacity", "stats")

    def __init__(self, participant_id, online, satisfaction, capacity, stats):
        self.participant_id = participant_id
        self.online = online
        self.satisfaction = satisfaction
        self.capacity = capacity
        self.stats = stats


class _MergedRegistry:
    """Final-state registry view satisfying ``build_summary``'s reads.

    ``total_capacity`` replicates ``SystemRegistry.total_capacity``
    exactly: ``_aggregate_sum`` over capacities in registration order
    (online-filtered in registration order for ``online_only``)."""

    def __init__(self, consumers, providers) -> None:
        self.consumers = tuple(consumers)
        self.providers = tuple(providers)
        self._consumers = {c.participant_id: c for c in self.consumers}
        self._providers = {p.participant_id: p for p in self.providers}

    def consumer(self, participant_id):
        return self._consumers[participant_id]

    def provider(self, participant_id):
        return self._providers[participant_id]

    def online_consumers(self):
        return [c for c in self.consumers if c.online]

    def online_providers(self):
        return [p for p in self.providers if p.online]

    def total_capacity(self, online_only: bool = True) -> float:
        providers = self.online_providers() if online_only else self.providers
        return _aggregate_sum([p.capacity for p in providers])


class _MergedPopulation:
    __slots__ = ("registry", "consumers", "providers")

    def __init__(self, registry: _MergedRegistry) -> None:
        self.registry = registry
        self.consumers = registry.consumers
        self.providers = registry.providers


class _MergedMediator:
    __slots__ = (
        "mediations",
        "failures",
        "coordination_messages",
        "forwarded",
        "records",
    )

    def __init__(self, mediations, failures, coordination, forwarded):
        self.mediations = mediations
        self.failures = failures
        self.coordination_messages = coordination
        self.forwarded = forwarded
        self.records = []


class _MergedNetwork:
    __slots__ = ("messages_sent", "messages_delivered")

    def __init__(self, sent: int, delivered: int) -> None:
        self.messages_sent = sent
        self.messages_delivered = delivered


def _merge_events(event_lists: List[List[tuple]]):
    """Interleave per-worker event streams into serial firing order.

    Each worker stream is already in firing order; across workers the
    order is ``(time, consumer ordinal)``.  Exact same-key collisions
    across workers would need two independent continuous-time draws to
    coincide (measure zero); ``heapq.merge`` then keeps earlier-listed
    workers first, deterministically."""
    return heapq.merge(*event_lists, key=lambda e: (e[1], e[2]))


def _replay(
    hub: MetricsHub,
    merged_events,
    ordinal_cid: Dict[int, str],
) -> List[Tuple[float, int, float]]:
    """Replay outcome events into ``hub``; return completions in order."""
    completions: List[Tuple[float, int, float]] = []
    for event in merged_events:
        kind = event[0]
        if kind == "m":
            _, _, ordinal, is_failure, delay = event
            cid = ordinal_cid[ordinal]
            hub.queries_issued += 1
            hub.issued_by_consumer[cid] = hub.issued_by_consumer.get(cid, 0) + 1
            if is_failure:
                hub.queries_failed += 1
                hub.failed_by_consumer[cid] = hub.failed_by_consumer.get(cid, 0) + 1
            else:
                hub.queries_allocated += 1
                hub.consultation_delays.append(delay)
        elif kind == "c":
            _, t, ordinal, rt = event
            cid = ordinal_cid[ordinal]
            hub.queries_completed += 1
            hub.completed_by_consumer[cid] = hub.completed_by_consumer.get(cid, 0) + 1
            hub.response_times.append(rt)
            hub.response_times_by_consumer.setdefault(cid, []).append(rt)
            completions.append((t, ordinal, rt))
        else:  # "t"
            _, _, ordinal = event
            cid = ordinal_cid[ordinal]
            hub.queries_timed_out += 1
            hub.timed_out_by_consumer[cid] = hub.timed_out_by_consumer.get(cid, 0) + 1
    return completions


def _replay_samples(
    hub: MetricsHub,
    sample_lists: List[List[tuple]],
    completions: List[Tuple[float, int, float]],
    interval: float,
    capacity_of: Dict[int, float],
    group_defs: List[Tuple[str, str, List[str]]],
    consumer_ordinal: Dict[str, int],
    provider_ordinal: Dict[str, int],
) -> None:
    """Re-run every sample instant with the exact serial arithmetic.

    Rows from all workers are concatenated and sorted by global
    registration ordinal, reproducing the registration-ordered sweeps
    of ``MetricsHub.sample_once`` float for float.  Completions at
    exactly a grid instant are counted into that instant's window
    (the serial order between a completion event and the sample event
    at the same instant depends on heap seq; completion times are
    continuous, so the instants coincide with measure zero)."""
    grid = [row[0] for row in sample_lists[0]]
    for rows in sample_lists[1:]:
        if [row[0] for row in rows] != grid:
            raise AssertionError("workers disagree on the sample grid")

    hub._sample_interval = interval
    for name, kind, ids in group_defs:
        hub.register_group(name, kind, ids)

    done = 0  # completions folded into previous windows
    for i, t in enumerate(grid):
        crow: List[tuple] = []
        prow: List[tuple] = []
        for rows in sample_lists:
            crow.extend(rows[i][1])
            prow.extend(rows[i][2])
        crow.sort()
        prow.sort()

        cons_online = [sat for _, sat, online in crow if online]
        hub.consumer_satisfaction.append(t, mean(cons_online, default=0.0))
        prov_online = [
            (sat, util) for _, sat, util, online in prow if online
        ]
        hub.provider_satisfaction.append(
            t, mean([sat for sat, _ in prov_online], default=0.0)
        )
        utilizations = [util for _, util in prov_online]
        hub.utilization_mean.append(t, mean(utilizations))
        hub.utilization_stdev.append(t, stdev(utilizations))
        hub.utilization_gini.append(t, gini(utilizations) if utilizations else 0.0)
        hub.providers_online.append(t, float(len(prov_online)))
        hub.consumers_online.append(t, float(len(cons_online)))
        hub.total_capacity.append(
            t,
            _aggregate_sum(
                [capacity_of[o] for o, _, _, online in prow if online]
            ),
        )

        csat = {o: sat for o, sat, _ in crow}
        psat = {o: sat for o, sat, _, _ in prow}
        for name, kind, ids in group_defs:
            if kind == "consumer":
                values = [csat[consumer_ordinal[pid]] for pid in ids]
            else:
                values = [psat[provider_ordinal[pid]] for pid in ids]
            hub.group_satisfaction[name].append(t, mean(values, default=0.0))

        window = done
        rts: List[float] = []
        while window < len(completions) and completions[window][0] <= t:
            rts.append(completions[window][2])
            window += 1
        hub.throughput.append(t, (window - done) / interval)
        hub.response_time_series.append(t, mean(rts, default=0.0))
        done = window

    hub._completions_at_last_sample = done
    hub._rt_window = [rt for _, _, rt in completions[done:]]


def _merge_result(
    config: ExperimentConfig,
    policy_spec: PolicySpec,
    harvests: List[dict],
    event_lists: List[List[tuple]],
    sample_lists: List[List[tuple]],
):
    from repro.experiments.runner import RunResult

    # Final participant state: ownership partitions the population, so
    # concatenating harvests and sorting by global registration ordinal
    # rebuilds the full final registry.
    consumer_rows = sorted(row for h in harvests for row in h["consumers"])
    provider_rows = sorted(row for h in harvests for row in h["providers"])
    consumers = [
        _FinalConsumer(
            cid,
            online,
            satisfaction,
            _FinalStats(issued=issued, completed=completed, failed=failed, mean_rt=mean_rt),
            _FinalTracker(alloc_sat),
        )
        for _, cid, online, satisfaction, issued, completed, failed, mean_rt, alloc_sat
        in consumer_rows
    ]
    providers = [
        _FinalProvider(pid, online, satisfaction, capacity, _FinalStats(work=work))
        for _, pid, online, satisfaction, capacity, work in provider_rows
    ]
    registry = _MergedRegistry(consumers, providers)
    consumer_ordinal = {c.participant_id: i for i, c in enumerate(consumers)}
    provider_ordinal = {p.participant_id: i for i, p in enumerate(providers)}
    ordinal_cid = {i: c.participant_id for i, c in enumerate(consumers)}
    capacity_of = {i: p.capacity for i, p in enumerate(providers)}

    mediator = _MergedMediator(
        sum(row[1] for h in harvests for row in h["shards"]),
        sum(row[2] for h in harvests for row in h["shards"]),
        sum(row[3] for h in harvests for row in h["shards"]),
        sum(row[4] for h in harvests for row in h["shards"]),
    )
    network = _MergedNetwork(
        sum(h["network"][0] for h in harvests),
        sum(h["network"][1] for h in harvests),
    )

    hub = MetricsHub()
    completions = _replay(hub, _merge_events(event_lists), ordinal_cid)
    hub.departures = sorted(
        (d for h in harvests for d in h["departures"]), key=lambda d: d.time
    )
    hub.rejoins = sorted(
        (r for h in harvests for r in h["rejoins"]), key=lambda r: r.time
    )
    _replay_samples(
        hub,
        sample_lists,
        completions,
        config.sample_interval,
        capacity_of,
        harvests[0]["groups"],
        consumer_ordinal,
        provider_ordinal,
    )

    summary = build_summary(
        policy_name=policy_spec.label,
        duration=config.duration,
        hub=hub,
        registry=registry,
        mediator=mediator,
        network=network,
    )
    return RunResult(
        label=policy_spec.label,
        config=config,
        policy_spec=policy_spec,
        summary=summary,
        hub=hub,
        population=_MergedPopulation(registry),
        mediator=mediator,
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


@dataclass
class ParallelRunReport:
    """Outcome of :func:`run_parallel`.

    ``mode`` is ``"parallel"`` when the worker fleet produced the
    result, ``"serial-fallback"`` when the configuration was ineligible
    or a worker aborted (``reason`` says why); ``result`` is correct and
    digest-identical to the serial run either way."""

    mode: str
    reason: Optional[str]
    workers: int
    groups: Tuple[Tuple[int, ...], ...]
    result: object  # RunResult


def run_parallel(
    config: ExperimentConfig,
    policy_spec: PolicySpec,
    workers: int,
    replication: int = 0,
) -> ParallelRunReport:
    """Execute one federated run across ``workers`` shard-group processes.

    Digest-identical to ``run_once(config, policy_spec, replication)``
    for every eligible configuration; transparently serial otherwise."""
    from repro.experiments.runner import run_once

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    reason = parallel_ineligible_reason(config)
    if reason is not None:
        return ParallelRunReport(
            mode="serial-fallback",
            reason=reason,
            workers=0,
            groups=(),
            result=run_once(config, policy_spec, replication=replication),
        )

    groups = plan_groups(config.federation.shards, workers)
    ctx = multiprocessing.get_context("fork")
    procs = []
    states: Dict[object, dict] = {}
    ctrls = []
    failure: Optional[Tuple[str, str]] = None
    try:
        for group in groups:
            data_recv, data_send = ctx.Pipe(duplex=False)
            ctrl_recv, ctrl_send = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(config, policy_spec, replication, group, data_send, ctrl_recv),
            )
            proc.start()
            # Close the child's ends in the parent so EOF propagates.
            data_send.close()
            ctrl_recv.close()
            procs.append(proc)
            ctrls.append(ctrl_send)
            states[data_recv] = {"events": [], "samples": [], "harvest": None}

        pending = dict(states)
        while pending and failure is None:
            for conn in _mp_connection.wait(list(pending)):
                state = pending[conn]
                try:
                    msg = conn.recv()
                except EOFError:
                    failure = ("error", "parallel-federation worker exited early")
                    del pending[conn]
                    continue
                kind = msg[0]
                if kind == "batch":
                    state["events"].extend(msg[1])
                    state["samples"].extend(msg[2])
                elif kind == "done":
                    state["harvest"] = msg[1]
                    del pending[conn]
                else:  # "violation" or "error"
                    failure = (kind, msg[1])
                    del pending[conn]

        if failure is not None:
            for ctrl in ctrls:
                try:
                    ctrl.send("stop")
                except (BrokenPipeError, OSError):
                    pass
            # Drain survivors to EOF so none blocks on a full pipe.
            while pending:
                ready = _mp_connection.wait(list(pending), timeout=10.0)
                if not ready:
                    break
                for conn in ready:
                    try:
                        conn.recv()
                    except EOFError:
                        del pending[conn]
    finally:
        for proc in procs:
            proc.join(timeout=30.0)
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.terminate()
                proc.join()
        for conn in states:
            conn.close()
        for ctrl in ctrls:
            ctrl.close()

    if failure is not None:
        kind, detail = failure
        if kind != "violation":
            raise RuntimeError(f"parallel federation worker failed:\n{detail}")
        return ParallelRunReport(
            mode="serial-fallback",
            reason=f"cross-group forwarding: {detail}",
            workers=0,
            groups=groups,
            result=run_once(config, policy_spec, replication=replication),
        )

    ordered = list(states.values())
    result = _merge_result(
        config,
        policy_spec,
        [state["harvest"] for state in ordered],
        [state["events"] for state in ordered],
        [state["samples"] for state in ordered],
    )
    return ParallelRunReport(
        mode="parallel",
        reason=None,
        workers=len(groups),
        groups=groups,
        result=result,
    )
