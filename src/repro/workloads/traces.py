"""Trace-driven workloads: record, synthesize and replay query arrivals.

Everything the batch engine runs is a *closed* workload: Poisson
arrival processes wired at run assembly.  This module makes arrivals
first-class data instead:

* :class:`TraceArrival` -- one query arrival (instant, consumer, topic,
  demand, replication) as a plain record;
* :class:`TraceSpec` -- a JSON-round-trippable workload description,
  either **recorded** (an explicit arrival list captured from a closed
  run) or **synthetic** (``diurnal`` / ``flash-crowd`` / ``heavy-tail``
  shapes generated deterministically from a seed by Lewis-Shedler
  thinning or burst sampling);
* :class:`ArrivalRecorder` / :func:`record_trace` -- capture every
  arrival of a closed run through ``Consumer.on_issue``;
* :class:`TraceWorkload` -- a :class:`~repro.experiments.runner.
  WorkloadInstaller` that replays a trace through per-consumer event
  chains which mirror :class:`~repro.workloads.arrivals.ArrivalProcess`
  *exactly* (issue first, then schedule the successor), so replaying a
  recorded trace reproduces the recording run's allocation digest
  bit-for-bit -- the property ``repro.serve`` and the replay-parity
  tests build on.

Randomness never leaks between layers: synthetic generation draws from
one named stream derived from the trace's own seed, and replay draws
nothing at all, so the run's policy/population streams see the same
values as in the recording run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import json

from repro.des.rng import RandomRoot, RandomStream
from repro.des.scheduler import Simulator

#: Version tag of the serialized trace document.
TRACE_VERSION = 1

#: Workload shapes a spec may declare.
TRACE_SHAPES = ("recorded", "diurnal", "flash-crowd", "heavy-tail")

#: Synthetic shapes (everything but "recorded").
SYNTHETIC_SHAPES = tuple(s for s in TRACE_SHAPES if s != "recorded")

#: Default seed of synthetic traces (the library-wide seed).
DEFAULT_TRACE_SEED = 20090301

#: Per-shape generator parameters and their defaults.  ``None`` means
#: "derived from the spec's duration at materialization time".
SHAPE_PARAMS: Dict[str, Dict[str, Optional[float]]] = {
    "diurnal": {"period": None, "amplitude": 0.8, "phase": -0.25},
    "flash-crowd": {
        "spike_start": None,
        "spike_duration": None,
        "spike_factor": 8.0,
    },
    "heavy-tail": {"alpha": 1.6, "burst_spacing": 0.05, "max_burst": 1000.0},
}


@dataclass(frozen=True)
class TraceArrival:
    """One query arrival: when, who, and what the query carries."""

    time: float
    consumer_id: str
    topic: str
    service_demand: float
    n_results: int = 1
    quorum: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"arrival time must be non-negative, got {self.time}")
        if self.service_demand <= 0:
            raise ValueError(
                f"service_demand must be positive, got {self.service_demand}"
            )
        if self.n_results < 1:
            raise ValueError(f"n_results must be >= 1, got {self.n_results}")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "time": self.time,
            "consumer_id": self.consumer_id,
            "topic": self.topic,
            "service_demand": self.service_demand,
            "n_results": self.n_results,
        }
        if self.quorum is not None:
            out["quorum"] = self.quorum
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceArrival":
        if not isinstance(data, dict):
            raise TypeError(f"TraceArrival must be a dict, got {type(data).__name__}")
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ValueError(
                f"unknown TraceArrival field(s): {', '.join(unknown)}. "
                f"Valid fields: {', '.join(sorted(valid))}"
            )
        return cls(**data)


# ----------------------------------------------------------------------
# Synthetic generation
# ----------------------------------------------------------------------


def resolve_shape_params(
    shape: str, params: Dict[str, float], duration: float
) -> Dict[str, float]:
    """Merge a spec's ``params`` over the shape's defaults.

    Duration-derived defaults: a diurnal cycle spans the whole trace;
    a flash crowd starts at 40% of it and lasts 15% of it.
    """
    if shape not in SHAPE_PARAMS:
        raise ValueError(
            f"shape {shape!r} takes no generator params; synthetic shapes: "
            f"{', '.join(SYNTHETIC_SHAPES)}"
        )
    defaults = SHAPE_PARAMS[shape]
    unknown = sorted(set(params) - set(defaults))
    if unknown:
        raise ValueError(
            f"unknown {shape} param(s): {', '.join(unknown)}. "
            f"Valid params: {', '.join(sorted(defaults))}"
        )
    merged = dict(defaults)
    merged.update(params)
    if shape == "diurnal" and merged["period"] is None:
        merged["period"] = duration
    if shape == "flash-crowd":
        if merged["spike_start"] is None:
            merged["spike_start"] = 0.4 * duration
        if merged["spike_duration"] is None:
            merged["spike_duration"] = 0.15 * duration
    return merged


def diurnal_rate(
    t: float, base_rate: float, period: float, amplitude: float, phase: float
) -> float:
    """Sinusoidal day/night cycle; never negative."""
    value = base_rate * (1.0 + amplitude * math.sin(2.0 * math.pi * (t / period + phase)))
    return value if value > 0.0 else 0.0


def flash_crowd_rate(
    t: float,
    base_rate: float,
    spike_start: float,
    spike_duration: float,
    spike_factor: float,
) -> float:
    """Flat baseline with one multiplicative spike window."""
    if spike_start <= t < spike_start + spike_duration:
        return base_rate * spike_factor
    return base_rate


def thinned_arrival_times(
    rate_fn: Callable[[float], float],
    rate_max: float,
    duration: float,
    stream: RandomStream,
) -> List[float]:
    """Lewis-Shedler thinning: sample a non-homogeneous Poisson process
    with intensity ``rate_fn`` bounded by ``rate_max`` over [0, duration]."""
    if rate_max <= 0:
        raise ValueError(f"rate_max must be positive, got {rate_max}")
    times: List[float] = []
    t = 0.0
    mean_gap = 1.0 / rate_max
    while True:
        t += stream.exponential(mean_gap)
        if t > duration:
            return times
        if stream.uniform() * rate_max < rate_fn(t):
            times.append(t)


def heavy_tail_times(
    base_rate: float,
    duration: float,
    alpha: float,
    burst_spacing: float,
    max_burst: float,
    stream: RandomStream,
) -> List[float]:
    """Bursty arrivals: Poisson burst epochs carrying Pareto-sized
    bursts, so a few huge bursts dominate (the paper's open-environment
    stress case).  The epoch rate is solved so the *mean* arrival rate
    matches ``base_rate``."""
    if alpha <= 1.0:
        raise ValueError(f"alpha must exceed 1 for a finite mean burst, got {alpha}")
    mean_burst = alpha / (alpha - 1.0)
    epoch_rate = base_rate / mean_burst
    times: List[float] = []
    t = 0.0
    mean_gap = 1.0 / epoch_rate
    cap = max(1, int(max_burst))
    while True:
        t += stream.exponential(mean_gap)
        if t > duration:
            break
        size = min(cap, int(math.ceil(stream.pareto(alpha, 1.0))))
        s = t
        for i in range(size):
            if i:
                s += stream.exponential(burst_spacing)
            if s <= duration:
                times.append(s)
    times.sort()
    return times


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TraceSpec:
    """A JSON-round-trippable open-loop workload.

    Recorded traces carry their arrivals explicitly (``shape ==
    "recorded"``); synthetic traces carry a seed plus shape parameters
    and materialize deterministically.  ``consumers`` names the issuing
    population of a synthetic trace (each arrival picks uniformly); a
    recorded trace leaves it empty and derives it from the arrivals.
    """

    name: str
    shape: str
    duration: float
    seed: int = DEFAULT_TRACE_SEED
    #: Mean aggregate arrival rate (arrivals/second) of synthetic shapes.
    base_rate: float = 1.0
    #: Shape-specific generator knobs (see :data:`SHAPE_PARAMS`).
    params: Dict[str, float] = field(default_factory=dict)
    #: Issuing consumer ids of a synthetic trace (topic defaults to the
    #: consumer id, the BOINC convention).
    consumers: Tuple[str, ...] = ()
    demand_mean: float = 30.0
    demand_cv: float = 0.5
    n_results: int = 1
    quorum: Optional[int] = None
    #: Explicit arrivals of a recorded trace.
    arrivals: Tuple[TraceArrival, ...] = ()
    #: Provenance of a recorded trace (experiment name, seed, policy,
    #: replication, engine) -- metadata only, never re-executed.
    source: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.shape not in TRACE_SHAPES:
            raise ValueError(
                f"unknown trace shape {self.shape!r}; valid shapes: "
                f"{', '.join(TRACE_SHAPES)}"
            )
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        object.__setattr__(self, "arrivals", tuple(self.arrivals))
        object.__setattr__(self, "consumers", tuple(self.consumers))
        if self.shape == "recorded":
            last = 0.0
            for arrival in self.arrivals:
                if arrival.time < last:
                    raise ValueError(
                        "recorded arrivals must be in non-decreasing time order"
                    )
                last = arrival.time
        else:
            if self.arrivals:
                raise ValueError(
                    f"synthetic shape {self.shape!r} must not carry explicit "
                    "arrivals; use shape='recorded'"
                )
            if self.base_rate <= 0:
                raise ValueError(f"base_rate must be positive, got {self.base_rate}")
            if self.demand_mean <= 0:
                raise ValueError(
                    f"demand_mean must be positive, got {self.demand_mean}"
                )
            if self.n_results < 1:
                raise ValueError(f"n_results must be >= 1, got {self.n_results}")
            # validate eagerly so bad params fail at spec build, not replay
            resolve_shape_params(self.shape, dict(self.params), self.duration)

    # -- materialization ------------------------------------------------

    def consumer_ids(self) -> Tuple[str, ...]:
        """The issuing population: declared for synthetic traces,
        derived (in first-appearance order) for recorded ones."""
        if self.consumers:
            return self.consumers
        seen: Dict[str, None] = {}
        for arrival in self.arrivals:
            seen.setdefault(arrival.consumer_id, None)
        return tuple(seen)

    def materialize(
        self, consumer_ids: Optional[Sequence[str]] = None
    ) -> Tuple[TraceArrival, ...]:
        """The arrival sequence, time-ordered.

        Recorded traces return their explicit arrivals; synthetic ones
        generate deterministically from the seed.  ``consumer_ids``
        supplies the issuing population when the spec declares none.
        """
        if self.shape == "recorded":
            return self.arrivals
        ids = tuple(consumer_ids) if consumer_ids else self.consumers
        if not ids:
            raise ValueError(
                f"synthetic trace {self.name!r} declares no consumers; pass "
                "consumer_ids (e.g. the experiment population's project names)"
            )
        params = resolve_shape_params(self.shape, dict(self.params), self.duration)
        stream = RandomRoot(self.seed).stream(f"trace/{self.name}/{self.shape}")
        if self.shape == "diurnal":
            rate_max = self.base_rate * (1.0 + abs(params["amplitude"]))
            times = thinned_arrival_times(
                lambda t: diurnal_rate(
                    t, self.base_rate, params["period"], params["amplitude"],
                    params["phase"],
                ),
                rate_max,
                self.duration,
                stream,
            )
        elif self.shape == "flash-crowd":
            rate_max = self.base_rate * max(1.0, params["spike_factor"])
            times = thinned_arrival_times(
                lambda t: flash_crowd_rate(
                    t, self.base_rate, params["spike_start"],
                    params["spike_duration"], params["spike_factor"],
                ),
                rate_max,
                self.duration,
                stream,
            )
        else:  # heavy-tail
            times = heavy_tail_times(
                self.base_rate,
                self.duration,
                params["alpha"],
                params["burst_spacing"],
                params["max_burst"],
                stream,
            )
        arrivals = []
        for t in times:
            cid = stream.choice(ids)
            demand = (
                stream.lognormal(self.demand_mean, self.demand_cv)
                if self.demand_cv > 0
                else self.demand_mean
            )
            arrivals.append(
                TraceArrival(
                    time=t,
                    consumer_id=cid,
                    topic=cid,
                    service_demand=demand,
                    n_results=self.n_results,
                    quorum=self.quorum,
                )
            )
        return tuple(arrivals)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dict; inverse of :meth:`from_dict`."""
        out: Dict[str, Any] = {
            "trace_version": TRACE_VERSION,
            "name": self.name,
            "shape": self.shape,
            "duration": self.duration,
            "seed": self.seed,
        }
        if self.shape == "recorded":
            out["arrivals"] = [a.to_dict() for a in self.arrivals]
            if self.source is not None:
                out["source"] = dict(self.source)
        else:
            out.update(
                base_rate=self.base_rate,
                params=dict(self.params),
                consumers=list(self.consumers),
                demand_mean=self.demand_mean,
                demand_cv=self.demand_cv,
                n_results=self.n_results,
                quorum=self.quorum,
            )
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceSpec":
        # local: repro.api.serialization imports experiments.config,
        # which resolves back through this package's __init__
        from repro.api.serialization import versioned_payload

        payload = versioned_payload(
            data,
            kind="TraceSpec",
            version_key="trace_version",
            version=TRACE_VERSION,
            valid_fields=frozenset(f.name for f in fields(cls)),
        )
        if "arrivals" in payload:
            payload["arrivals"] = tuple(
                a if isinstance(a, TraceArrival) else TraceArrival.from_dict(a)
                for a in payload["arrivals"]
            )
        if "consumers" in payload:
            payload["consumers"] = tuple(payload["consumers"])
        return cls(**payload)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "TraceSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def __len__(self) -> int:
        return len(self.arrivals)

    def __repr__(self) -> str:
        if self.shape == "recorded":
            detail = f"arrivals={len(self.arrivals)}"
        else:
            detail = f"base_rate={self.base_rate:g}/s, seed={self.seed}"
        return (
            f"TraceSpec({self.name!r}, shape={self.shape!r}, "
            f"duration={self.duration:g}s, {detail})"
        )


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------


class ArrivalRecorder:
    """Captures every arrival of a live run through ``Consumer.on_issue``."""

    def __init__(self) -> None:
        self.arrivals: List[TraceArrival] = []

    def attach(self, consumers) -> "ArrivalRecorder":
        """Subscribe to every consumer of a wired run (before stepping)."""
        for consumer in consumers:
            consumer.on_issue(self.record)
        return self

    def record(self, query) -> None:
        """One issued query becomes one arrival record."""
        self.arrivals.append(
            TraceArrival(
                time=query.issued_at,
                consumer_id=query.consumer_id,
                topic=query.topic,
                service_demand=query.service_demand,
                n_results=query.n_results,
                quorum=query.quorum,
            )
        )

    def to_spec(
        self,
        name: str,
        duration: float,
        source: Optional[Dict[str, Any]] = None,
    ) -> TraceSpec:
        """The captured arrivals as a recorded :class:`TraceSpec`.

        Arrivals are recorded in issue order, which is time order (the
        simulator clock never moves backwards), so no sort is needed --
        and none is wanted: a sort could reorder equal-time arrivals.
        """
        return TraceSpec(
            name=name,
            shape="recorded",
            duration=duration,
            arrivals=tuple(self.arrivals),
            source=source,
        )


def record_trace(config, policy_spec, replication: int = 0):
    """Run ``(config, policy_spec, replication)`` to completion while
    recording every arrival; returns ``(trace, result)``.

    The recording is an observer only -- the run is bit-identical to an
    unrecorded one -- so ``result.digest()`` is the parity target that
    replaying ``trace`` (batch or through ``sbqa serve``) must hit.
    """
    from repro.experiments.runner import wire_run

    live = wire_run(config, policy_spec, replication=replication)
    recorder = ArrivalRecorder().attach(live.population.consumers)
    result = live.finalize()
    trace = recorder.to_spec(
        name=f"{config.name}-recorded",
        duration=config.duration,
        source={
            "experiment": config.name,
            "seed": config.seed,
            "engine": config.engine,
            "policy": policy_spec.label,
            "replication": replication,
        },
    )
    return trace, result


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------


class TraceReplayProcess:
    """Replays one consumer's recorded arrivals as an event chain.

    Mirrors :class:`~repro.workloads.arrivals.ArrivalProcess` exactly:
    each firing issues its query *first* and only then schedules the
    successor, so scheduler sequence numbers are assigned at the same
    instants as the recording run's Poisson chains and every
    same-timestamp tie breaks identically.  Like the original, a firing
    that finds its consumer offline kills the chain permanently.
    """

    def __init__(
        self,
        sim: Simulator,
        consumer,
        arrivals: Sequence[TraceArrival],
        horizon: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.consumer = consumer
        self.arrivals = tuple(arrivals)
        self.horizon = horizon
        self.queries_issued = 0
        self._index = 0
        self._started = False
        self._label = f"arrivals:{consumer.participant_id}"

    def start(self) -> None:
        """Schedule the first recorded arrival (idempotent; no-op when
        the consumer has no recorded arrivals)."""
        if self._started or not self.arrivals:
            return
        self._started = True
        first = max(self.arrivals[0].time, self.sim.now)
        self.sim.schedule_at(first, self._fire, label=self._label)

    def _fire(self) -> None:
        if not self.consumer.online:
            return  # departed consumers stop issuing, permanently
        if self.horizon is not None and self.sim.now > self.horizon:
            return
        arrival = self.arrivals[self._index]
        self.consumer.issue(
            topic=arrival.topic,
            service_demand=arrival.service_demand,
            n_results=arrival.n_results,
            quorum=arrival.quorum,
        )
        self.queries_issued += 1
        self._index += 1
        if self._index < len(self.arrivals):
            nxt = max(self.arrivals[self._index].time, self.sim.now)
            self.sim.schedule_at(nxt, self._fire, label=self._label)

    def __repr__(self) -> str:
        return (
            f"TraceReplayProcess(consumer={self.consumer.participant_id!r}, "
            f"issued={self.queries_issued}/{len(self.arrivals)})"
        )


class TraceWorkload:
    """A :class:`~repro.experiments.runner.WorkloadInstaller` replaying
    a :class:`TraceSpec` instead of wiring Poisson arrivals."""

    def __init__(self, trace: TraceSpec) -> None:
        self.trace = trace
        self.processes: List[TraceReplayProcess] = []

    def install(self, sim, population, config, root) -> None:
        known = {c.participant_id for c in population.consumers}
        arrivals = self.trace.materialize(
            consumer_ids=[c.participant_id for c in population.consumers]
        )
        by_consumer: Dict[str, List[TraceArrival]] = {}
        for arrival in arrivals:
            if arrival.consumer_id not in known:
                raise ValueError(
                    f"trace {self.trace.name!r} references unknown consumer "
                    f"{arrival.consumer_id!r}; population has: "
                    f"{', '.join(sorted(known))}"
                )
            by_consumer.setdefault(arrival.consumer_id, []).append(arrival)
        # Same iteration order as the Poisson block it replaces, so the
        # initial chain events take the same relative scheduler slots.
        for consumer in population.consumers:
            process = TraceReplayProcess(
                sim,
                consumer,
                by_consumer.get(consumer.participant_id, ()),
                horizon=config.duration,
            )
            process.start()
            self.processes.append(process)


def replay_once(config, policy_spec, trace: TraceSpec, replication: int = 0):
    """Replay ``trace`` through a batch run wired like ``run_once``.

    With a trace recorded from the same ``(config, policy_spec,
    replication)``, the returned result's :meth:`~repro.experiments.
    runner.RunResult.digest` equals the recording run's bit-for-bit.
    """
    from repro.experiments.runner import wire_run

    return wire_run(
        config,
        policy_spec,
        replication=replication,
        workload=TraceWorkload(trace),
    ).finalize()
