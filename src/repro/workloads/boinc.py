"""The demo's example scenario: a BOINC-like volunteer-computing system.

Three research projects (consumers) with the popularity structure of
Section IV -- SETI@home popular, proteins@home normal, Einstein@home
unpopular -- served by a heterogeneous volunteer population built from
the archetypes of :mod:`repro.workloads.preferences`.

:func:`build_boinc_population` produces participants only; the
experiment runner wires them to a mediator, arrival processes, churn
monitor and metrics hub.  Everything is drawn from named substreams of
one :class:`~repro.des.rng.RandomRoot`, so a population is a pure
function of ``(seed, params)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.queries import DemandModel

from repro.core.intentions import (
    ConsumerIntentionModel,
    PreferenceUtilizationIntentions,
    ProviderIntentionModel,
    ReputationBlendIntentions,
    make_consumer_intention_model,
    make_provider_intention_model,
)
from repro.des.network import Network
from repro.des.rng import RandomRoot
from repro.des.scheduler import Simulator
from repro.system.consumer import Consumer
from repro.system.provider import Provider
from repro.system.registry import SystemRegistry
from repro.workloads.preferences import (
    ArchetypeMix,
    draw_consumer_preferences,
    draw_provider_archetype,
    draw_provider_preferences,
    shares_from_preferences,
)


@dataclass(frozen=True)
class ProjectSpec:
    """One research project (consumer).

    ``popularity_weight`` biases which project selective volunteers
    love; ``rate_scale`` scales the project's share of the global
    arrival rate (1.0 = equal share).
    """

    name: str
    popularity: str  # "popular" | "normal" | "unpopular" (documentation tag)
    popularity_weight: float
    rate_scale: float = 1.0


def paper_projects() -> Tuple[ProjectSpec, ...]:
    """The three projects of the demo scenario."""
    return (
        # rate_scale values sum to 3.0, so the aggregate load matches the
        # equal-share design while popular projects issue more queries --
        # which is what drowns unpopular-project devotees in unwanted
        # work under interest-blind allocation.
        ProjectSpec("seti", "popular", popularity_weight=0.6, rate_scale=1.35),
        ProjectSpec("proteins", "normal", popularity_weight=0.3, rate_scale=1.05),
        ProjectSpec("einstein", "unpopular", popularity_weight=0.1, rate_scale=0.6),
    )


@dataclass(frozen=True)
class FocalProviderSpec:
    """Scenario 7 probe: a volunteer with sharply defined interests."""

    participant_id: str = "focal-provider"
    loves: str = "einstein"
    love_preference: float = 0.9
    dislike_preference: float = -0.8
    capacity: float = 1.0


@dataclass(frozen=True)
class FocalConsumerSpec:
    """Scenario 7 probe: a project trusting a small provider subset."""

    participant_id: str = "focal-consumer"
    n_trusted: int = 10
    trusted_preference: float = 0.9
    other_preference: float = -0.5
    rate_scale: float = 1.0
    popularity_weight: float = 0.1


@dataclass
class BoincScenarioParams:
    """Every knob of the BOINC population and workload.

    The defaults realise the regime the demo operates in: moderate load
    (~55% of aggregate capacity), replicated queries (``n_results=2``,
    BOINC's redundancy against malicious volunteers), heterogeneous
    volunteer capacity, and an interest mix in which interest-blind
    allocation leaves a substantial provider minority dissatisfied.
    """

    n_providers: int = 120
    projects: Tuple[ProjectSpec, ...] = field(default_factory=paper_projects)
    archetype_mix: ArchetypeMix = field(default_factory=ArchetypeMix)

    capacity_mean: float = 1.0
    capacity_cv: float = 0.3
    demand_mean: float = 30.0
    demand_cv: float = 0.5
    #: "lognormal" (moderate variance, the scenario default) or
    #: "pareto" (heavy-tailed: a few huge tasks dominate; the tail
    #: exponent is derived from demand_mean and pareto_minimum).
    demand_distribution: str = "lognormal"
    pareto_minimum: float = 10.0
    n_results: int = 2
    #: Quorum stamped on every query (None = all replicas must answer).
    #: BOINC issues n replicas and validates once `quorum` agree; the
    #: crash-injection benches exercise this defence.
    quorum: Optional[int] = None
    target_load: float = 0.70

    memory: int = 100
    #: Per-participant window heterogeneity ("The k value may be
    #: different for each participant depending on its memory capacity",
    #: Section II): each participant draws its window length uniformly
    #: from [memory*(1-jitter), memory*(1+jitter)].  0 = the demo's
    #: simplification (everyone uses the same k).
    memory_jitter: float = 0.0
    saturation_horizon: float = 120.0
    rt_reference: float = 120.0

    consumer_intentions: object = field(
        default_factory=lambda: ReputationBlendIntentions(alpha=0.3)
    )
    # beta = 0.1: interests dominate the expressed intention (Scenarios
    # 1-4 study interest-driven participants; Scenario 5 switches to
    # load-only).  KnBest stage 2 handles load-awareness regardless.
    provider_intentions: object = field(
        default_factory=lambda: PreferenceUtilizationIntentions(beta=0.1)
    )

    preferred_fraction: float = 0.25
    focal_provider: Optional[FocalProviderSpec] = None
    focal_consumer: Optional[FocalConsumerSpec] = None

    def __post_init__(self) -> None:
        if self.n_providers < 1:
            raise ValueError(f"need at least one provider, got {self.n_providers}")
        if not self.projects:
            raise ValueError("need at least one project")
        if self.target_load <= 0:
            raise ValueError(f"target_load must be positive, got {self.target_load}")
        if self.n_results < 1:
            raise ValueError(f"n_results must be >= 1, got {self.n_results}")
        if not 0.0 <= self.memory_jitter < 1.0:
            raise ValueError(
                f"memory_jitter must be in [0, 1), got {self.memory_jitter}"
            )
        if self.quorum is not None and not 1 <= self.quorum <= self.n_results:
            raise ValueError(
                f"quorum must satisfy 1 <= quorum <= n_results, got "
                f"quorum={self.quorum}, n_results={self.n_results}"
            )
        if self.demand_distribution not in ("lognormal", "pareto"):
            raise ValueError(
                f"demand_distribution must be 'lognormal' or 'pareto', got "
                f"{self.demand_distribution!r}"
            )
        if (
            self.demand_distribution == "pareto"
            and self.demand_mean <= self.pareto_minimum
        ):
            raise ValueError(
                "pareto demands need demand_mean > pareto_minimum, got "
                f"mean={self.demand_mean}, minimum={self.pareto_minimum}"
            )

    def make_demand_model(self, stream) -> "DemandModel":
        """Build the configured demand model over ``stream``.

        For the Pareto case the tail exponent alpha is solved from the
        requested mean: ``mean = alpha * minimum / (alpha - 1)``.
        """
        from repro.workloads.queries import LognormalDemand, ParetoDemand

        if self.demand_distribution == "lognormal":
            return LognormalDemand(stream, mean=self.demand_mean, cv=self.demand_cv)
        alpha = self.demand_mean / (self.demand_mean - self.pareto_minimum)
        return ParetoDemand(stream, alpha=alpha, minimum=self.pareto_minimum)

    @property
    def consumer_ids(self) -> List[str]:
        ids = [p.name for p in self.projects]
        if self.focal_consumer is not None:
            ids.append(self.focal_consumer.participant_id)
        return ids

    def arrival_rate(self, total_capacity: float, rate_scale: float = 1.0) -> float:
        """Per-consumer Poisson rate hitting the target system load.

        ``load = sum(rate_i) * demand_mean * n_results / total_capacity``,
        solved for equal per-consumer shares then scaled.
        """
        n_consumers = len(self.consumer_ids)
        base = (
            self.target_load
            * total_capacity
            / (n_consumers * self.demand_mean * self.n_results)
        )
        return base * rate_scale


@dataclass
class BoincPopulation:
    """What :func:`build_boinc_population` returns."""

    registry: SystemRegistry
    consumers: List[Consumer]
    providers: List[Provider]
    archetype_of: Dict[str, str]
    params: BoincScenarioParams

    def providers_of_archetype(self, archetype: str) -> List[Provider]:
        """All providers drawn with the given archetype."""
        return [
            p for p in self.providers if self.archetype_of.get(p.participant_id) == archetype
        ]


@dataclass(frozen=True)
class _PopulationDraws:
    """The random draws behind one population, detached from entities.

    A population is a pure function of ``(seed, params)``; the part that
    is *expensive* is the stream arithmetic (one named substream per
    provider, thousands of uniform/lognormal draws), not the entity
    construction.  This record captures every drawn value so a sweep
    replaying the same ``(seed, draw-affecting params)`` -- e.g. a grid
    over ``k``/``kn``/``beta``/duration with a fixed population -- can
    rebuild *fresh* entities without re-running the draws.  Substreams
    are independent by construction (each is seeded by hashing its
    name), so skipping them cannot shift any other stream: the rebuilt
    population is bit-identical to a freshly drawn one.
    """

    providers: Tuple[Tuple[str, str, Dict[str, float], float, int], ...]
    focal_provider_memory: Optional[int]
    consumers: Tuple[Tuple[str, Dict[str, float], int], ...]
    focal_consumer_draw: Optional[Tuple[Dict[str, float], int]]


#: Bounded memo of population draws, keyed by (root seed + every param
#: that feeds a stream draw).  Knobs that only parameterize entity
#: construction (intention models, horizons, quorum, n_results, ...)
#: are deliberately absent from the key: sweeps over them share draws.
_DRAW_CACHE: Dict[tuple, _PopulationDraws] = {}
_DRAW_CACHE_LIMIT = 8


def _draw_cache_key(root: RandomRoot, params: BoincScenarioParams) -> tuple:
    return (
        root.seed,
        params.n_providers,
        tuple((p.name, p.popularity_weight) for p in params.projects),
        repr(params.archetype_mix),
        params.capacity_mean,
        params.capacity_cv,
        params.memory,
        params.memory_jitter,
        params.preferred_fraction,
        repr(params.focal_provider),
        repr(params.focal_consumer),
    )


def _draw_population(
    root: RandomRoot, params: BoincScenarioParams
) -> _PopulationDraws:
    """All stream draws of one population, memoized across builds."""
    key = _draw_cache_key(root, params)
    cached = _DRAW_CACHE.get(key)
    if cached is not None:
        return cached

    consumer_ids = [p.name for p in params.projects]
    popularity_weights = [p.popularity_weight for p in params.projects]
    focal_consumer = params.focal_consumer
    if focal_consumer is not None:
        consumer_ids.append(focal_consumer.participant_id)
        popularity_weights.append(focal_consumer.popularity_weight)

    memory_stream = root.stream("population/memory")

    def draw_memory() -> int:
        if params.memory_jitter == 0.0:
            return params.memory
        low = params.memory * (1.0 - params.memory_jitter)
        high = params.memory * (1.0 + params.memory_jitter)
        return max(1, round(memory_stream.uniform(low, high)))

    provider_rows = []
    provider_ids: List[str] = []
    capacity_stream = root.stream("population/capacity")
    for index in range(params.n_providers):
        pid = f"p{index:03d}"
        stream = root.stream(f"population/provider/{pid}")
        archetype = draw_provider_archetype(stream, params.archetype_mix)
        preferences = draw_provider_preferences(
            stream, archetype, consumer_ids, popularity_weights
        )
        capacity = capacity_stream.lognormal(params.capacity_mean, params.capacity_cv)
        provider_rows.append((pid, archetype, preferences, capacity, draw_memory()))
        provider_ids.append(pid)

    focal_provider_memory: Optional[int] = None
    if params.focal_provider is not None:
        focal_provider_memory = draw_memory()
        provider_ids.append(params.focal_provider.participant_id)

    consumer_rows = []
    for project in params.projects:
        stream = root.stream(f"population/consumer/{project.name}")
        preferences = draw_consumer_preferences(
            stream, provider_ids, preferred_fraction=params.preferred_fraction
        )
        consumer_rows.append((project.name, preferences, draw_memory()))

    focal_consumer_draw: Optional[Tuple[Dict[str, float], int]] = None
    if focal_consumer is not None:
        stream = root.stream("population/consumer/focal")
        trusted = set(stream.sample(provider_ids, focal_consumer.n_trusted))
        preferences = {
            pid: (
                focal_consumer.trusted_preference
                if pid in trusted
                else focal_consumer.other_preference
            )
            for pid in provider_ids
        }
        focal_consumer_draw = (preferences, draw_memory())

    draws = _PopulationDraws(
        providers=tuple(provider_rows),
        focal_provider_memory=focal_provider_memory,
        consumers=tuple(consumer_rows),
        focal_consumer_draw=focal_consumer_draw,
    )
    if len(_DRAW_CACHE) >= _DRAW_CACHE_LIMIT:
        _DRAW_CACHE.clear()
    _DRAW_CACHE[key] = draws
    return draws


def build_boinc_population(
    sim: Simulator,
    network: Network,
    root: RandomRoot,
    params: BoincScenarioParams,
) -> BoincPopulation:
    """Draw the whole population from named substreams of ``root``.

    The draws themselves are memoized per ``(seed, draw-affecting
    params)`` (:class:`_PopulationDraws`), so replications and sweep
    points that share a population pay the stream arithmetic once;
    entities are always constructed fresh, and preference dicts are
    copied out of the memo so no state leaks between runs.
    """
    registry = SystemRegistry()
    consumer_model: ConsumerIntentionModel = make_consumer_intention_model(
        params.consumer_intentions
    )
    provider_model: ProviderIntentionModel = make_provider_intention_model(
        params.provider_intentions
    )
    consumer_ids = [p.name for p in params.projects]
    focal_consumer = params.focal_consumer
    if focal_consumer is not None:
        consumer_ids.append(focal_consumer.participant_id)

    draws = _draw_population(root, params)

    # -- providers -------------------------------------------------------
    providers: List[Provider] = []
    archetype_of: Dict[str, str] = {}
    for pid, archetype, preferences, capacity, memory in draws.providers:
        provider = Provider(
            sim,
            network,
            participant_id=pid,
            capacity=capacity,
            preferences=dict(preferences),
            intention_model=provider_model,
            memory=memory,
            saturation_horizon=params.saturation_horizon,
            resource_shares=shares_from_preferences(preferences),
        )
        providers.append(provider)
        archetype_of[pid] = archetype
        registry.add_provider(provider)

    if params.focal_provider is not None:
        spec = params.focal_provider
        preferences = {
            cid: (spec.love_preference if cid == spec.loves else spec.dislike_preference)
            for cid in consumer_ids
        }
        focal = Provider(
            sim,
            network,
            participant_id=spec.participant_id,
            capacity=spec.capacity,
            preferences=preferences,
            intention_model=provider_model,
            memory=draws.focal_provider_memory,
            saturation_horizon=params.saturation_horizon,
            resource_shares=shares_from_preferences(preferences),
        )
        providers.append(focal)
        archetype_of[spec.participant_id] = "focal"
        registry.add_provider(focal)

    # -- consumers -------------------------------------------------------
    consumers: List[Consumer] = []
    for name, preferences, memory in draws.consumers:
        consumer = Consumer(
            sim,
            network,
            participant_id=name,
            preferences=dict(preferences),
            intention_model=consumer_model,
            memory=memory,
            default_n_results=params.n_results,
            rt_reference=params.rt_reference,
        )
        consumer.default_quorum = params.quorum
        consumers.append(consumer)
        registry.add_consumer(consumer)

    if focal_consumer is not None:
        preferences, memory = draws.focal_consumer_draw
        consumer = Consumer(
            sim,
            network,
            participant_id=focal_consumer.participant_id,
            preferences=dict(preferences),
            intention_model=consumer_model,
            memory=memory,
            default_n_results=params.n_results,
            rt_reference=params.rt_reference,
        )
        consumer.default_quorum = params.quorum
        consumers.append(consumer)
        registry.add_consumer(consumer)

    return BoincPopulation(
        registry=registry,
        consumers=consumers,
        providers=providers,
        archetype_of=archetype_of,
        params=params,
    )
