"""Open-loop query arrival processes.

Each consumer owns one arrival process: a self-rescheduling event chain
that issues queries until the horizon, pausing forever if the consumer
leaves the system (a departed project stops submitting work).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.des.rng import RandomStream
from repro.des.scheduler import Simulator
from repro.workloads.queries import DemandModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.consumer import Consumer


class ArrivalProcess:
    """Base class wiring a consumer, demand model and issue loop."""

    def __init__(
        self,
        sim: Simulator,
        consumer: "Consumer",
        demand_model: DemandModel,
        topic: Optional[str] = None,
        n_results: Optional[int] = None,
        horizon: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.consumer = consumer
        self.demand_model = demand_model
        #: Topic stamped on issued queries; defaults to the consumer id
        #: (in BOINC a query's "topic" is simply its project).
        self.topic = topic if topic is not None else consumer.participant_id
        self.n_results = n_results
        self.horizon = horizon
        self.queries_issued = 0
        self._started = False

    def next_interval(self) -> float:
        """Delay until the next arrival; subclasses define the law."""
        raise NotImplementedError

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin issuing (idempotent).  First arrival after
        ``initial_delay`` (defaults to one drawn interval)."""
        if self._started:
            return
        self._started = True
        delay = self.next_interval() if initial_delay is None else initial_delay
        self.sim.schedule_in(delay, self._fire, label=f"arrivals:{self.consumer.participant_id}")

    def _fire(self) -> None:
        if not self.consumer.online:
            return  # departed consumers stop issuing, permanently
        if self.horizon is not None and self.sim.now > self.horizon:
            return
        self.consumer.issue(
            topic=self.topic,
            service_demand=self.demand_model.sample(),
            n_results=self.n_results,
        )
        self.queries_issued += 1
        self.sim.schedule_in(
            self.next_interval(), self._fire, label=f"arrivals:{self.consumer.participant_id}"
        )


class PoissonArrivals(ArrivalProcess):
    """Poisson arrivals at a fixed rate (exponential inter-arrival times)."""

    def __init__(
        self,
        sim: Simulator,
        consumer: "Consumer",
        demand_model: DemandModel,
        rate: float,
        stream: RandomStream,
        topic: Optional[str] = None,
        n_results: Optional[int] = None,
        horizon: Optional[float] = None,
    ) -> None:
        super().__init__(sim, consumer, demand_model, topic, n_results, horizon)
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)
        self._stream = stream

    def next_interval(self) -> float:
        return self._stream.exponential(1.0 / self.rate)

    def __repr__(self) -> str:
        return (
            f"PoissonArrivals(consumer={self.consumer.participant_id!r}, "
            f"rate={self.rate:.4g}/s, issued={self.queries_issued})"
        )


class DeterministicArrivals(ArrivalProcess):
    """Fixed inter-arrival interval; exact timing for tests."""

    def __init__(
        self,
        sim: Simulator,
        consumer: "Consumer",
        demand_model: DemandModel,
        interval: float,
        topic: Optional[str] = None,
        n_results: Optional[int] = None,
        horizon: Optional[float] = None,
    ) -> None:
        super().__init__(sim, consumer, demand_model, topic, n_results, horizon)
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)

    def next_interval(self) -> float:
        return self.interval

    def __repr__(self) -> str:
        return (
            f"DeterministicArrivals(consumer={self.consumer.participant_id!r}, "
            f"interval={self.interval:.4g}s, issued={self.queries_issued})"
        )
