"""Service-demand models: how much work one query carries.

A demand model is sampled once per issued query; demands are expressed
in work units, so a provider with ``capacity`` work units per second
serves demand ``d`` in ``d / capacity`` seconds.
"""

from __future__ import annotations

from repro.des.rng import RandomStream


class DemandModel:
    """Strategy: draw the service demand of the next query."""

    def sample(self) -> float:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        """Expected demand; used to size arrival rates for a target load."""
        raise NotImplementedError


class FixedDemand(DemandModel):
    """Every query carries exactly the same demand (tests, micro-benches)."""

    def __init__(self, demand: float) -> None:
        if demand <= 0:
            raise ValueError(f"demand must be positive, got {demand}")
        self._demand = float(demand)

    def sample(self) -> float:
        return self._demand

    @property
    def mean(self) -> float:
        return self._demand

    def __repr__(self) -> str:
        return f"FixedDemand({self._demand})"


class LognormalDemand(DemandModel):
    """Lognormal demands -- the moderate-variance default of the scenarios."""

    def __init__(self, stream: RandomStream, mean: float = 30.0, cv: float = 0.5) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if cv < 0:
            raise ValueError(f"cv must be non-negative, got {cv}")
        self._stream = stream
        self._mean = float(mean)
        self._cv = float(cv)

    def sample(self) -> float:
        return self._stream.lognormal(self._mean, self._cv)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"LognormalDemand(mean={self._mean}, cv={self._cv})"


class ParetoDemand(DemandModel):
    """Heavy-tailed demands for stress ablations (a few huge tasks)."""

    def __init__(self, stream: RandomStream, alpha: float = 2.5, minimum: float = 10.0) -> None:
        if alpha <= 1.0:
            raise ValueError(f"alpha must exceed 1 for a finite mean, got {alpha}")
        if minimum <= 0:
            raise ValueError(f"minimum must be positive, got {minimum}")
        self._stream = stream
        self._alpha = float(alpha)
        self._minimum = float(minimum)

    def sample(self) -> float:
        return self._stream.pareto(self._alpha, self._minimum)

    @property
    def mean(self) -> float:
        return self._alpha * self._minimum / (self._alpha - 1.0)

    def __repr__(self) -> str:
        return f"ParetoDemand(alpha={self._alpha}, min={self._minimum})"
