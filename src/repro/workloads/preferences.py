"""Preference-matrix generators.

The demo's volunteer population is described qualitatively: SETI@home
is *popular* ("the majority of providers want to collaborate"),
proteins@home *normal* ("a great number, but not most"), and
Einstein@home *unpopular* ("most providers desire to collaborate ...
with a small fraction of computational resources").

We realise that structure with three provider **archetypes**:

* **enthusiast** -- likes every project (the classic volunteer who
  donates to whatever needs cycles);
* **selective** -- loves exactly one project and strongly dislikes the
  others (the BOINC volunteer of the paper's 80%/20% example); the
  loved project is drawn with popularity-proportional weights, so
  popular projects attract most selective volunteers.  Interest-blind
  allocation feeds them mostly disliked work, which is what pushes them
  under the Scenario-2 departure threshold;
* **picky** -- mildly dislikes every project (attached for historical
  or social reasons).  No technique can satisfy them: blind allocation
  feeds them unwanted work, interest-aware allocation starves them;
  they churn everywhere and anchor the comparison.

# reconstruction: the paper gives no numeric preference distributions;
# the mix fractions and ranges below were chosen so that (a) the three
# popularity classes hold by construction, and (b) interest-blind
# allocation leaves a substantial minority of providers below the 0.35
# departure threshold of Scenario 2 -- the regime the paper
# demonstrates.  All knobs are exposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.des.rng import RandomStream

#: Archetype names in canonical order.
ARCHETYPES = ("enthusiast", "selective", "picky")


@dataclass(frozen=True)
class ArchetypeMix:
    """Population fractions of the three provider archetypes."""

    enthusiast: float = 0.35
    selective: float = 0.50
    picky: float = 0.15

    def __post_init__(self) -> None:
        total = self.enthusiast + self.selective + self.picky
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"archetype fractions must sum to 1, got {total}")
        if min(self.enthusiast, self.selective, self.picky) < 0:
            raise ValueError("archetype fractions must be non-negative")

    def weights(self) -> List[float]:
        return [self.enthusiast, self.selective, self.picky]


def draw_provider_archetype(stream: RandomStream, mix: ArchetypeMix) -> str:
    """Draw one archetype name according to the mix."""
    return stream.weighted_choice(list(ARCHETYPES), mix.weights())


def draw_provider_preferences(
    stream: RandomStream,
    archetype: str,
    consumer_ids: Sequence[str],
    popularity_weights: Sequence[float],
    like_range: Tuple[float, float] = (0.7, 1.0),
    dislike_range: Tuple[float, float] = (-1.0, -0.85),
    enthusiast_range: Tuple[float, float] = (0.2, 0.9),
    picky_range: Tuple[float, float] = (-0.6, -0.2),
) -> Dict[str, float]:
    """Draw one provider's preference for every consumer.

    ``popularity_weights`` (same length as ``consumer_ids``) bias which
    project a *selective* provider falls in love with.
    """
    if len(consumer_ids) != len(popularity_weights):
        raise ValueError("consumer_ids and popularity_weights must align")
    if archetype == "enthusiast":
        return {
            cid: stream.uniform(*enthusiast_range) for cid in consumer_ids
        }
    if archetype == "selective":
        favourite = stream.weighted_choice(list(consumer_ids), list(popularity_weights))
        prefs = {}
        for cid in consumer_ids:
            if cid == favourite:
                prefs[cid] = stream.uniform(*like_range)
            else:
                prefs[cid] = stream.uniform(*dislike_range)
        return prefs
    if archetype == "picky":
        return {cid: stream.uniform(*picky_range) for cid in consumer_ids}
    raise ValueError(f"unknown archetype {archetype!r}; known: {ARCHETYPES}")


def draw_consumer_preferences(
    stream: RandomStream,
    provider_ids: Sequence[str],
    preferred_fraction: float = 0.25,
    preferred_range: Tuple[float, float] = (0.4, 0.9),
    neutral_range: Tuple[float, float] = (-0.2, 0.5),
) -> Dict[str, float]:
    """Draw one consumer's preference for every provider.

    A random ``preferred_fraction`` of providers is trusted (high
    preference, e.g. known-reliable hosts); the rest draw from a mildly
    positive neutral band.
    """
    if not 0.0 <= preferred_fraction <= 1.0:
        raise ValueError(
            f"preferred_fraction must be in [0, 1], got {preferred_fraction}"
        )
    prefs = {}
    for pid in provider_ids:
        if stream.bernoulli(preferred_fraction):
            prefs[pid] = stream.uniform(*preferred_range)
        else:
            prefs[pid] = stream.uniform(*neutral_range)
    return prefs


def shares_from_preferences(
    preferences: Dict[str, float],
    floor: float = 0.02,
) -> Dict[str, float]:
    """Derive BOINC resource shares from preferences.

    BOINC volunteers translate their interests into static fractions;
    we map positive preference mass to share mass, with a small
    ``floor`` share for every project so that nobody's share vector is
    empty (BOINC clients attach with a minimum share; it also keeps the
    shares dispatcher deadlock-free).  Shares are normalised to sum
    to 1.
    """
    if floor < 0:
        raise ValueError(f"floor must be non-negative, got {floor}")
    raw = {cid: max(0.0, pref) + floor for cid, pref in preferences.items()}
    total = sum(raw.values())
    if total <= 0:
        # all-floor vector (possible only with floor == 0): uniform
        n = len(preferences)
        return {cid: 1.0 / n for cid in preferences} if n else {}
    return {cid: value / total for cid, value in raw.items()}
