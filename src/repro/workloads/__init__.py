"""Workload and population generators.

* :mod:`repro.workloads.arrivals` -- open-loop query arrival processes
  (Poisson and deterministic), one per consumer;
* :mod:`repro.workloads.queries` -- service-demand models (lognormal,
  Pareto, fixed);
* :mod:`repro.workloads.preferences` -- preference-matrix generators:
  the provider archetypes (enthusiast / selective / picky) whose mix
  realises the paper's popular / normal / unpopular project structure,
  consumer preference draws, and BOINC resource shares derived from
  preferences;
* :mod:`repro.workloads.boinc` -- the demo's example scenario: three
  research projects (SETI@home-like popular, proteins@home-like normal,
  Einstein@home-like unpopular) and a heterogeneous volunteer
  population, plus optional focal probe participants for Scenario 7;
* :mod:`repro.workloads.traces` -- arrivals as data: record the arrival
  sequence of any closed run, synthesize diurnal / flash-crowd /
  heavy-tail open-loop traffic, and replay either through the batch
  engine (bit-identical digests) or through ``sbqa serve``.
"""

from repro.workloads.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workloads.traces import (
    TRACE_SHAPES,
    ArrivalRecorder,
    TraceArrival,
    TraceSpec,
    TraceWorkload,
    record_trace,
    replay_once,
)
from repro.workloads.queries import DemandModel, FixedDemand, LognormalDemand, ParetoDemand
from repro.workloads.preferences import (
    ARCHETYPES,
    ArchetypeMix,
    draw_consumer_preferences,
    draw_provider_archetype,
    draw_provider_preferences,
    shares_from_preferences,
)
from repro.workloads.boinc import (
    BoincPopulation,
    BoincScenarioParams,
    ProjectSpec,
    build_boinc_population,
    paper_projects,
)

__all__ = [
    "PoissonArrivals",
    "DeterministicArrivals",
    "DemandModel",
    "FixedDemand",
    "LognormalDemand",
    "ParetoDemand",
    "ARCHETYPES",
    "ArchetypeMix",
    "draw_provider_archetype",
    "draw_provider_preferences",
    "draw_consumer_preferences",
    "shares_from_preferences",
    "BoincScenarioParams",
    "ProjectSpec",
    "BoincPopulation",
    "build_boinc_population",
    "paper_projects",
    "TRACE_SHAPES",
    "TraceArrival",
    "TraceSpec",
    "TraceWorkload",
    "ArrivalRecorder",
    "record_trace",
    "replay_once",
]
