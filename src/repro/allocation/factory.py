"""Policy factory: build any allocation technique from a plain spec.

Experiment configs name policies by string (plus optional parameters)
so scenario definitions stay declarative data; this module maps those
names to constructors.  SbQA parameters ride in an
:class:`~repro.core.sbqa.SbQAConfig`.

Every policy built here works under both engines: each implements the
hot-path ``select_fast`` hook bit-identically to its ``select``, so
``engine="fast"`` needs no per-policy special-casing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.allocation.boinc_shares import BoincSharesPolicy
from repro.allocation.capacity import CapacityBasedPolicy
from repro.allocation.economic import EconomicPolicy
from repro.allocation.simple import RandomPolicy, RoundRobinPolicy, ShortestQueuePolicy
from repro.core.policy import AllocationPolicy
from repro.core.sbqa import SbQAConfig, SbQAPolicy
from repro.des.rng import RandomRoot

#: Policy names accepted by :func:`make_policy`.
POLICY_NAMES = (
    "sbqa",
    "capacity",
    "economic",
    "boinc-shares",
    "random",
    "round-robin",
    "shortest-queue",
)


def available_policies() -> List[str]:
    """Names accepted by :func:`make_policy`, in a stable order."""
    return list(POLICY_NAMES)


def make_policy(
    name: str,
    root: RandomRoot,
    sbqa: Optional[SbQAConfig] = None,
    params: Optional[Dict[str, object]] = None,
) -> AllocationPolicy:
    """Instantiate the policy called ``name``.

    Parameters
    ----------
    name:
        One of :func:`available_policies`.
    root:
        Random root from which stochastic policies derive their stream
        (named after the policy, so adding a policy never perturbs
        another's draws).
    sbqa:
        SbQA parameterisation, used only when ``name == "sbqa"``.
    params:
        Extra keyword arguments for the baseline constructors, e.g.
        ``{"selfishness": 0.8}`` for the economic policy.
    """
    params = dict(params or {})
    key = name.lower()
    if key == "sbqa":
        return SbQAPolicy(sbqa or SbQAConfig(), root.stream("policy/sbqa/knbest"))
    if key == "capacity":
        return CapacityBasedPolicy(**params)
    if key == "economic":
        return EconomicPolicy(**params)
    if key == "boinc-shares":
        return BoincSharesPolicy(**params)
    if key == "random":
        return RandomPolicy(root.stream("policy/random"))
    if key == "round-robin":
        return RoundRobinPolicy(**params)
    if key == "shortest-queue":
        return ShortestQueuePolicy(**params)
    raise ValueError(
        f"unknown policy {name!r}; known policies: {', '.join(POLICY_NAMES)}"
    )
