"""Reference baselines: random, round-robin, shortest-queue.

These are not in the paper's scenario list; they anchor the ablation
benches (a technique must at least beat random to matter) and give the
test suite simple, fully predictable policies to assert against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Sequence

from repro.core.policy import (
    AllocationContext,
    AllocationDecision,
    AllocationPolicy,
    allocation_count,
)
from repro.des.rng import RandomStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.provider import Provider
    from repro.system.query import Query


class RandomPolicy(AllocationPolicy):
    """Allocate to ``min(q.n, |P_q|)`` providers drawn uniformly."""

    name = "random"
    consults_participants = False

    def __init__(self, stream: RandomStream) -> None:
        self._stream = stream

    def select(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        take = allocation_count(query, len(candidates))
        allocated = self._stream.sample(list(candidates), take)
        return AllocationDecision(allocated=allocated)


class RoundRobinPolicy(AllocationPolicy):
    """Cycle through providers in a fixed id order.

    The cursor is global (not per consumer): the classic dispatcher
    that spreads queries evenly regardless of who asks.
    """

    name = "round-robin"
    consults_participants = False

    def __init__(self) -> None:
        self._cursor: int = 0

    def select(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        ordered = sorted(candidates, key=lambda p: p.participant_id)
        take = allocation_count(query, len(ordered))
        allocated = [
            ordered[(self._cursor + offset) % len(ordered)] for offset in range(take)
        ]
        self._cursor = (self._cursor + take) % len(ordered)
        return AllocationDecision(allocated=allocated)


class ShortestQueuePolicy(AllocationPolicy):
    """Allocate to the providers with the smallest queued backlog.

    Differs from :class:`~repro.allocation.capacity.CapacityBasedPolicy`
    in ignoring raw capacity: a fast-but-busy machine loses to a slow
    idle one.
    """

    name = "shortest-queue"
    consults_participants = False

    def select(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        ranked = sorted(
            candidates, key=lambda p: (p.backlog_seconds, p.participant_id)
        )
        take = allocation_count(query, len(ranked))
        return AllocationDecision(allocated=ranked[:take])
