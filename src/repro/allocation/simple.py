"""Reference baselines: random, round-robin, shortest-queue.

These are not in the paper's scenario list; they anchor the ablation
benches (a technique must at least beat random to matter) and give the
test suite simple, fully predictable policies to assert against.

Each baseline also implements the hot-path ``select_fast`` hook (see
:class:`~repro.core.policy.AllocationPolicy`): the same decision,
bit-for-bit, produced with decorate-sorts over inlined load reads and
slot-based :class:`~repro.core.policy.FastAllocationDecision` objects,
so ``engine="fast"`` covers these policies without falling back to the
event-faithful ``select``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.policy import (
    AllocationContext,
    AllocationDecision,
    AllocationPolicy,
    FastAllocationDecision,
    allocation_count,
)
from repro.des.rng import RandomStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.provider import Provider
    from repro.system.query import Query


def _pid(provider: "Provider") -> str:
    """Sort key of the deterministic id orderings below."""
    return provider.participant_id


class RandomPolicy(AllocationPolicy):
    """Allocate to ``min(q.n, |P_q|)`` providers drawn uniformly."""

    name = "random"
    consults_participants = False

    def __init__(self, stream: RandomStream) -> None:
        self._stream = stream

    def select(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        take = allocation_count(query, len(candidates))
        allocated = self._stream.sample(list(candidates), take)
        return AllocationDecision(allocated=allocated)

    def select_fast(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> FastAllocationDecision:
        # sample() consumes the same getrandbits sequence for any
        # equal-length population, so drawing from the snapshot tuple
        # directly skips the defensive list copy of select().
        take = allocation_count(query, len(candidates))
        allocated = self._stream.sample(candidates, take)
        return FastAllocationDecision(allocated=allocated)


class RoundRobinPolicy(AllocationPolicy):
    """Cycle through providers in a fixed id order.

    The cursor is global (not per consumer): the classic dispatcher
    that spreads queries evenly regardless of who asks.
    """

    name = "round-robin"
    consults_participants = False

    def __init__(self) -> None:
        self._cursor: int = 0
        # Hot-path cache: the id-sorted ordering of the last candidate
        # snapshot, keyed on the snapshot's identity (the registry
        # reuses one tuple between membership/online transitions, so
        # the sort runs once per transition epoch, not per query).
        self._ordered_cache: tuple = (None, [])

    def select(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        ordered = sorted(candidates, key=lambda p: p.participant_id)
        take = allocation_count(query, len(ordered))
        allocated = [
            ordered[(self._cursor + offset) % len(ordered)] for offset in range(take)
        ]
        self._cursor = (self._cursor + take) % len(ordered)
        return AllocationDecision(allocated=allocated)

    def select_fast(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> FastAllocationDecision:
        snapshot, ordered = self._ordered_cache
        if snapshot is not candidates:
            ordered = sorted(candidates, key=_pid)
            self._ordered_cache = (candidates, ordered)
        n = len(ordered)
        cursor = self._cursor
        take = allocation_count(query, n)
        allocated = [ordered[(cursor + offset) % n] for offset in range(take)]
        self._cursor = (cursor + take) % n
        return FastAllocationDecision(allocated=allocated)


class ShortestQueuePolicy(AllocationPolicy):
    """Allocate to the providers with the smallest queued backlog.

    Differs from :class:`~repro.allocation.capacity.CapacityBasedPolicy`
    in ignoring raw capacity: a fast-but-busy machine loses to a slow
    idle one.
    """

    name = "shortest-queue"
    consults_participants = False

    def select(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        ranked = sorted(
            candidates, key=lambda p: (p.backlog_seconds, p.participant_id)
        )
        take = allocation_count(query, len(ranked))
        return AllocationDecision(allocated=ranked[:take])

    def select_fast(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> FastAllocationDecision:
        # Decorated rows inline backlog_seconds' arithmetic (same
        # max(0, busy_until - now), so the same floats); participant
        # ids are unique, so the provider in slot 2 never compares.
        now = ctx.now
        rows = [
            (max(0.0, p._busy_until - now), p.participant_id, p)
            for p in candidates
        ]
        rows.sort()
        take = allocation_count(query, len(rows))
        return FastAllocationDecision(allocated=[row[2] for row in rows[:take]])
