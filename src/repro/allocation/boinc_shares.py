"""The native BOINC resource-shares dispatcher.

"In BOINC, providers can express their intentions by specifying the
fraction of computational resources devoted to each consumer ...
However, this may waste idle computational resources of providers when
their interesting consumers do not issue queries" (Section IV).  The
demo's motivating example: a volunteer donating 80%/20% to projects
``c_a``/``c_b`` caps ``c_b`` at 20% even while ``c_a`` is silent.

This policy reproduces that rigid mechanism so the waste is measurable:

* each provider holds normalised ``resource_shares`` per consumer;
* the dispatcher keeps a *debt* counter per (provider, consumer):
  share-weighted elapsed capacity minus work already granted -- the
  standard BOINC scheduling idea;
* a query from consumer ``c`` goes to the capable providers with the
  highest positive debt towards ``c``; providers whose share for ``c``
  is zero **refuse** it, and providers whose debt is exhausted are
  deprioritised;
* idle capacity of a provider whose preferred projects are silent is
  *not* offered to others beyond its declared share -- that is the
  modelled waste.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Sequence, Tuple

from repro.core.policy import (
    AllocationContext,
    AllocationDecision,
    AllocationPolicy,
    FastAllocationDecision,
    allocation_count,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.provider import Provider
    from repro.system.query import Query


class BoincSharesPolicy(AllocationPolicy):
    """Debt-based dispatch under fixed per-consumer resource shares.

    Parameters
    ----------
    overdraft:
        Seconds of capacity a provider may serve a consumer *beyond*
        its share-weighted entitlement before the dispatcher stops
        choosing it for that consumer.  A small positive overdraft
        avoids deadlock at simulation start, when every debt is 0.
    """

    name = "boinc-shares"
    consults_participants = False

    def __init__(self, overdraft: float = 30.0) -> None:
        if overdraft < 0:
            raise ValueError(f"overdraft must be non-negative, got {overdraft}")
        self.overdraft = overdraft
        # work units granted so far, keyed by (provider_id, consumer_id)
        self._granted: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------

    def _share(self, provider: "Provider", consumer_id: str) -> float:
        shares = provider.resource_shares
        if not shares:
            return 0.0
        total = sum(shares.values())
        if total <= 0:
            return 0.0
        return shares.get(consumer_id, 0.0) / total

    def debt(self, provider: "Provider", consumer_id: str, now: float) -> float:
        """Share-weighted entitlement minus work already granted (work units)."""
        share = self._share(provider, consumer_id)
        if share <= 0.0:
            return float("-inf")  # refuses this consumer outright
        elapsed = max(0.0, now - provider.joined_at)
        entitlement = share * elapsed * provider.capacity
        granted = self._granted.get((provider.participant_id, consumer_id), 0.0)
        return entitlement - granted

    def select(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        consumer_id = query.consumer_id
        willing = []
        for provider in candidates:
            debt = self.debt(provider, consumer_id, ctx.now)
            if debt == float("-inf"):
                continue  # zero share: the provider refuses this project
            if debt + self.overdraft * provider.capacity < query.service_demand:
                continue  # entitlement exhausted: rigid cap bites even if idle
            willing.append((provider, debt))

        if not willing:
            ctx.trace.record(
                ctx.now,
                "boinc-shares",
                f"query {query.qid}: no provider with share budget for {consumer_id}",
                qid=query.qid,
            )
            return AllocationDecision(allocated=[])

        willing.sort(key=lambda item: (-item[1], item[0].participant_id))
        take = allocation_count(query, len(willing))
        allocated = [provider for provider, _ in willing[:take]]
        for provider in allocated:
            key = (provider.participant_id, consumer_id)
            self._granted[key] = self._granted.get(key, 0.0) + query.service_demand
        ctx.trace.record(
            ctx.now,
            "boinc-shares",
            f"query {query.qid}: -> {[p.participant_id for p in allocated]}",
            qid=query.qid,
        )
        return AllocationDecision(allocated=allocated)

    def select_fast(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> FastAllocationDecision:
        """Hot-path :meth:`select`: one inlined debt pass.

        ``_share`` / :meth:`debt` run inline with identical arithmetic
        (same normalisation quotient, same entitlement product), the
        refusal / exhausted-budget filters short-circuit in the same
        candidate order, and the ranking is a decorate-sort on the
        same ``(-debt, participant_id)`` key -- bit-identical
        decisions and ``_granted`` bookkeeping.
        """
        now = ctx.now
        consumer_id = query.consumer_id
        demand = query.service_demand
        overdraft = self.overdraft
        granted = self._granted
        rows = []
        append = rows.append
        for p in candidates:
            shares = p.resource_shares
            if not shares:
                continue  # zero share: the provider refuses this project
            total = sum(shares.values())
            if total <= 0:
                continue
            share = shares.get(consumer_id, 0.0) / total
            if share <= 0.0:
                continue
            capacity = p.capacity
            debt = share * max(0.0, now - p.joined_at) * capacity - granted.get(
                (p.participant_id, consumer_id), 0.0
            )
            if debt + overdraft * capacity < demand:
                continue  # entitlement exhausted: rigid cap bites even if idle
            append((-debt, p.participant_id, p))

        if not rows:
            return FastAllocationDecision(allocated=[])

        rows.sort()
        take = allocation_count(query, len(rows))
        allocated = [row[2] for row in rows[:take]]
        for provider in allocated:
            key = (provider.participant_id, consumer_id)
            granted[key] = granted.get(key, 0.0) + demand
        return FastAllocationDecision(allocated=allocated)

    def describe(self) -> dict:
        return {"name": self.name, "overdraft": self.overdraft}
