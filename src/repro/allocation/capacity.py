"""Capacity-based allocation [9] -- the BOINC-equivalent baseline.

"Most current query allocation techniques ... focus on distributing
the query load among providers in a way that maximizes overall
performance" (Section I).  This baseline is the canonical such
technique: allocate each query to the providers with the most
*available capacity* (capacity scaled by current headroom), ignoring
every interest on both sides.

It is the strongest baseline on response time -- and the one whose
interest-blindness Scenario 2 shows driving dissatisfied volunteers
away.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.policy import (
    AllocationContext,
    AllocationDecision,
    AllocationPolicy,
    FastAllocationDecision,
    allocation_count,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.provider import Provider
    from repro.system.query import Query


class CapacityBasedPolicy(AllocationPolicy):
    """Allocate to the ``min(q.n, |P_q|)`` providers with most headroom.

    Ranking key: available capacity (descending), then raw capacity
    (descending -- prefer bigger machines at equal headroom), then
    provider id for determinism.
    """

    name = "capacity"
    consults_participants = False

    def select(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        ranked = sorted(
            candidates,
            key=lambda p: (-p.available_capacity, -p.capacity, p.participant_id),
        )
        take = allocation_count(query, len(ranked))
        allocated = ranked[:take]
        ctx.trace.record(
            ctx.now,
            "capacity",
            f"query {query.qid}: -> {[p.participant_id for p in allocated]}",
            qid=query.qid,
        )
        return AllocationDecision(allocated=allocated)

    def select_fast(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> FastAllocationDecision:
        """Hot-path :meth:`select`: decorate-sort over one inlined pass.

        The headroom read (``available_capacity`` -> ``utilization``
        -> ``backlog_seconds``) is three chained properties per
        candidate on the event path; here the identical arithmetic
        runs inline over the candidate snapshot, so the floats -- and
        therefore the ranking -- are bit-identical.
        """
        now = ctx.now
        rows = []
        append = rows.append
        for p in candidates:
            capacity = p.capacity
            utilization = min(
                1.0, max(0.0, p._busy_until - now) / p.saturation_horizon
            )
            append(
                (-(capacity * (1.0 - utilization)), -capacity, p.participant_id, p)
            )
        rows.sort()
        take = allocation_count(query, len(rows))
        return FastAllocationDecision(allocated=[row[3] for row in rows[:take]])

    def describe(self) -> dict:
        return {"name": self.name, "criterion": "available capacity"}
