"""Economic (Mariposa-style) allocation [13].

Mariposa runs queries through a microeconomic protocol: providers
submit *bids* -- a price reflecting what performing the work costs them
-- and the buyer takes the cheapest offers.  The demo uses "an economic
technique [13]" as its second Scenario-1 baseline.

# reconstruction: Mariposa's full budget-curve machinery is out of
# scope for a dispatcher-level comparison; what the scenarios exercise
# is an allocation principle in which (a) loaded providers price
# themselves out (time is money), and (b) provider preferences shade the
# price (performing disliked work costs more), while consumer interests
# play no role.  The bid below captures exactly that:
#
#     bid(p, q) = (backlog(p) + service_time(p, q))
#                 * (1 + selfishness * (1 - pref(p, q)) / 2)
#
# The delay term makes bidding load-balancing in equilibrium; the
# preference markup is the "selfish provider" ingredient the paper's
# satisfaction analysis probes.  ``selfishness = 0`` reduces the
# technique to pure delay-based bidding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.policy import (
    AllocationContext,
    AllocationDecision,
    AllocationPolicy,
    FastAllocationDecision,
    allocation_count,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.provider import Provider
    from repro.system.query import Query


class EconomicPolicy(AllocationPolicy):
    """Providers bid; the mediator buys the ``min(q.n, |P_q|)`` cheapest.

    Parameters
    ----------
    selfishness:
        Strength of the preference markup in [0, 1].  At 0 the bid is
        the pure expected delay; at 1 a maximally disliked query costs
        double the delay price.
    """

    name = "economic"
    #: Bidding requires a call-for-bids/bid round-trip with every
    #: candidate, so the consultation cost applies.
    consults_participants = True

    def __init__(self, selfishness: float = 0.5) -> None:
        if not 0.0 <= selfishness <= 1.0:
            raise ValueError(f"selfishness must be in [0, 1], got {selfishness}")
        self.selfishness = selfishness

    def bid(self, provider: "Provider", query: "Query") -> float:
        """The price ``provider`` asks for performing ``query``."""
        delay = provider.estimated_completion_delay(query.service_demand)
        preference = provider.preference_for(query)
        markup = 1.0 + self.selfishness * (1.0 - preference) / 2.0
        return delay * markup

    def select(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> AllocationDecision:
        bids = {
            p.participant_id: self.bid(p, query)
            for p in candidates
        }
        ranked = sorted(
            candidates, key=lambda p: (bids[p.participant_id], p.participant_id)
        )
        take = allocation_count(query, len(ranked))
        allocated = ranked[:take]
        ctx.trace.record(
            ctx.now,
            "economic",
            f"query {query.qid}: cheapest bids "
            f"{[(p.participant_id, round(bids[p.participant_id], 3)) for p in allocated]}",
            qid=query.qid,
        )
        return AllocationDecision(
            allocated=allocated,
            # every candidate bid, so every candidate was touched by the
            # mediation and learns the outcome
            informed=list(candidates),
            # one call-for-bids + one bid per candidate
            consult_messages=2 * len(candidates),
            metadata={"bids": bids},
        )

    def select_fast(
        self,
        query: "Query",
        candidates: Sequence["Provider"],
        ctx: AllocationContext,
    ) -> FastAllocationDecision:
        """Hot-path :meth:`select`: one inlined bidding pass.

        ``bid()``'s property chain (``estimated_completion_delay`` ->
        ``backlog_seconds`` + ``service_time``) runs inline with the
        identical expressions, the demand guard is hoisted out of the
        per-candidate loop, and the ranking is a decorate-sort on the
        same ``(bid, participant_id)`` key -- so bids, ranking and the
        decision metadata are bit-identical to the event path.
        """
        now = ctx.now
        demand = query.service_demand
        if demand <= 0:  # service_time()'s guard, hoisted
            raise ValueError(f"demand must be positive, got {demand}")
        selfishness = self.selfishness
        bids = {}
        rows = []
        append = rows.append
        for p in candidates:
            delay = max(0.0, p._busy_until - now) + demand / p.capacity
            markup = 1.0 + selfishness * (1.0 - p.preference_for(query)) / 2.0
            bid = delay * markup
            pid = p.participant_id
            bids[pid] = bid
            append((bid, pid, p))
        rows.sort()
        take = allocation_count(query, len(rows))
        return FastAllocationDecision(
            allocated=[row[2] for row in rows[:take]],
            informed=list(candidates),
            consult_messages=2 * len(candidates),
            metadata={"bids": bids},
        )

    def describe(self) -> dict:
        return {"name": self.name, "selfishness": self.selfishness}
