"""Baseline query-allocation techniques.

The demo evaluates SbQA against the techniques its scenarios name:

* :mod:`repro.allocation.capacity` -- **Capacity-based** allocation
  [9]; "the way in which BOINC allocates queries ... is equivalent to a
  Capacity-based query allocation technique" (Scenario 1);
* :mod:`repro.allocation.economic` -- an **economic** technique in the
  style of Mariposa [13]: providers bid, the mediator buys the cheapest
  bids (Scenario 1);
* :mod:`repro.allocation.boinc_shares` -- the native **BOINC resource
  shares** dispatcher, the paper's motivating example of rigid
  intentions wasting idle capacity (Section IV);
* :mod:`repro.allocation.simple` -- random / round-robin /
  shortest-queue reference baselines used in ablations.

All of them implement :class:`repro.core.policy.AllocationPolicy`, so
the satisfaction model analyses them exactly like SbQA (paper claim i).
Every baseline also implements the hot-path ``select_fast`` hook with
bit-identical decisions, so ``engine="fast"`` covers the whole policy
surface (see docs/performance.md's engine-coverage matrix).
"""

from repro.allocation.capacity import CapacityBasedPolicy
from repro.allocation.economic import EconomicPolicy
from repro.allocation.boinc_shares import BoincSharesPolicy
from repro.allocation.simple import RandomPolicy, RoundRobinPolicy, ShortestQueuePolicy
from repro.allocation.factory import available_policies, make_policy

__all__ = [
    "CapacityBasedPolicy",
    "EconomicPolicy",
    "BoincSharesPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "ShortestQueuePolicy",
    "available_policies",
    "make_policy",
]
