#!/usr/bin/env python
"""Fail on dead relative links in the documentation.

Scans Markdown files (``docs/*.md`` and ``README.md`` by default, or
the paths given as arguments) for inline links and images,
``[text](target)`` / ``![alt](target)``, and checks that every
*relative* target resolves to an existing file or directory relative to
the file containing the link.  External targets (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are ignored;
a ``path#anchor`` target is checked for the path part only.

Usage::

    python tools/check_links.py              # default doc set
    python tools/check_links.py docs/*.md    # explicit files

Exit status 1 lists every dead link as ``file:line: target``; this is
the check CI runs against the documentation suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline Markdown link or image: [text](target) / ![alt](target).
#: The target group stops at whitespace or ')' (titles after the URL,
#: e.g. ``(target "title")``, are tolerated).
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")

#: Targets that are not local files.
_EXTERNAL = re.compile(r"^(?:[a-z][a-z0-9+.-]*:|//)", re.IGNORECASE)


def default_doc_set(root: Path) -> List[Path]:
    """README.md plus every Markdown file under docs/."""
    docs = sorted((root / "docs").glob("**/*.md")) if (root / "docs").is_dir() else []
    readme = root / "README.md"
    return ([readme] if readme.is_file() else []) + docs


def iter_links(path: Path) -> Iterable[Tuple[int, str]]:
    """Every (line number, target) of an inline link in one file."""
    in_code_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def dead_links(paths: Iterable[Path]) -> List[str]:
    """``file:line: target`` for every relative link that resolves nowhere."""
    failures = []
    for path in paths:
        for lineno, target in iter_links(path):
            if _EXTERNAL.match(target):
                continue
            relative = target.split("#", 1)[0]
            if not relative:  # pure in-page anchor
                continue
            if not (path.parent / relative).exists():
                failures.append(f"{path}:{lineno}: {target}")
    return failures


def main(argv: List[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    paths = [Path(arg) for arg in argv] if argv else default_doc_set(root)
    missing = [str(p) for p in paths if not p.is_file()]
    if missing:
        print("no such file(s): " + ", ".join(missing), file=sys.stderr)
        return 2
    failures = dead_links(paths)
    for failure in failures:
        print(f"dead link: {failure}", file=sys.stderr)
    if failures:
        print(f"{len(failures)} dead link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(paths)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
