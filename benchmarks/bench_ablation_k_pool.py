"""Ablation A3: the KnBest candidate-pool size k.

KnBest's stage-1 sample bounds both the mediation's message cost
(O(kn) consultations out of a k-sample) and its view of the system:
small k risks missing the good matches, large k costs more and biases
stage 2 toward globally idle providers.  This ablation sweeps k at a
fixed kn and prints response time, satisfaction and coordination
message counts.

Expressed through the sweep engine (one ``sbqa.k`` axis over the demo
base experiment) rather than a hand-rolled ``run_once`` loop -- the
grid, its expansion and its aggregation all come from
:mod:`repro.api.sweep`.
"""

from repro.analysis.tables import render_table
from repro.api.builder import Experiment
from repro.api.sweep import SweepSession

K_VALUES = (5, 10, 20, 40)
KN = 5


def build_sweep(duration: float, n_providers: int):
    """The A3 grid: KnBest pool size k at fixed kn."""
    return (
        Experiment.builder()
        .named("ablation-k")
        .seed(20090301)
        .duration(duration)
        .providers(n_providers)
        .policy("sbqa", k=K_VALUES[0], kn=KN)
        .sweep()
        .named("ablation-k")
        .axis("sbqa.k", K_VALUES)
        .build()
    )


def bench_k_pool(benchmark, scenario_scale):
    duration = scenario_scale["duration"] / 2
    n_providers = scenario_scale["n_providers"]
    sweep = build_sweep(duration, n_providers)

    def run_sweep():
        return SweepSession(sweep).run()

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for point in result.points:
        s = point.policies[0].summary
        rows.append(
            [
                point.point.coords["k"],
                s.mean_response_time,
                s.provider_satisfaction_final,
                s.consumer_satisfaction_final,
                s.coordination_messages,
                s.utilization_gini,
            ]
        )
    print()
    print(
        render_table(
            ["k", "mean rt (s)", "prov sat", "cons sat", "coord msgs", "util gini"],
            rows,
            title=f"Ablation A3: KnBest pool size (kn={KN})",
        )
    )

    # coordination cost is bounded by kn, not k: message counts stay flat
    messages = [row[4] for row in rows]
    assert max(messages) < 1.6 * min(messages)
    # all runs complete work
    assert all(
        policy.summary.queries_completed > 0 for _, policy in result.cells()
    )
