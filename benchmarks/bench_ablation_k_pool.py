"""Ablation A3: the KnBest candidate-pool size k.

KnBest's stage-1 sample bounds both the mediation's message cost
(O(kn) consultations out of a k-sample) and its view of the system:
small k risks missing the good matches, large k costs more and biases
stage 2 toward globally idle providers.  This ablation sweeps k at a
fixed kn and prints response time, satisfaction and coordination
message counts.
"""

from benchmarks.conftest import print_scenario
from repro.analysis.tables import render_table
from repro.core.sbqa import SbQAConfig
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import run_once
from repro.workloads.boinc import BoincScenarioParams

K_VALUES = (5, 10, 20, 40)
KN = 5


def bench_k_pool(benchmark, scenario_scale):
    duration = scenario_scale["duration"] / 2
    n_providers = scenario_scale["n_providers"]
    config = ExperimentConfig(
        name="ablation-k",
        seed=20090301,
        duration=duration,
        population=BoincScenarioParams(n_providers=n_providers),
    )

    def sweep():
        results = []
        for k in K_VALUES:
            spec = PolicySpec(
                name="sbqa", label=f"sbqa[k={k}]", sbqa=SbQAConfig(k=k, kn=min(KN, k))
            )
            results.append(run_once(config, spec))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for k, result in zip(K_VALUES, results):
        s = result.summary
        rows.append(
            [
                k,
                s.mean_response_time,
                s.provider_satisfaction_final,
                s.consumer_satisfaction_final,
                s.coordination_messages,
                s.utilization_gini,
            ]
        )
    print()
    print(
        render_table(
            ["k", "mean rt (s)", "prov sat", "cons sat", "coord msgs", "util gini"],
            rows,
            title=f"Ablation A3: KnBest pool size (kn={KN})",
        )
    )

    # coordination cost is bounded by kn, not k: message counts stay flat
    messages = [row[4] for row in rows]
    assert max(messages) < 1.6 * min(messages)
    # all runs complete work
    assert all(r.summary.queries_completed > 0 for r in results)
