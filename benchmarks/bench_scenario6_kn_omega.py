"""Scenario 6 bench: adapting SbQA to the application via kn and omega.

Regenerates the demo's tuning experiment: sweeping KnBest's ``kn``
trades response time against interest matching, and pinning ``omega``
trades consumer satisfaction against provider satisfaction, with the
adaptive Equation-2 omega sitting between the extremes.
"""

from benchmarks.conftest import assert_claims, print_scenario
from repro.experiments.scenarios import scenario6_application_adaptability


def bench_scenario6(benchmark, scenario_scale):
    result = benchmark.pedantic(
        lambda: scenario6_application_adaptability(**scenario_scale),
        rounds=1,
        iterations=1,
    )
    print_scenario(result)

    print("\ntuning guide (derived from this run):")
    rows = [(run.label, run.summary) for run in result.runs]
    fastest = min(rows, key=lambda r: r[1].mean_response_time)
    happiest = max(rows, key=lambda r: r[1].provider_satisfaction_final)
    print(f"  lowest response time : {fastest[0]} ({fastest[1].mean_response_time:.1f}s)")
    print(
        f"  happiest providers   : {happiest[0]} "
        f"({happiest[1].provider_satisfaction_final:.3f})"
    )

    assert_claims(result)
