"""Scenario 3 bench: SbQA vs baselines in a captive environment.

Regenerates the demo's claim that SbQA "is suitable for captive
environments even if it was not designed for [them]": response times
within a small factor of the baselines, participant satisfaction
strictly higher.
"""

from benchmarks.conftest import assert_claims, print_scenario
from repro.experiments.scenarios import scenario3_captive


def bench_scenario3(benchmark, scenario_scale):
    result = benchmark.pedantic(
        lambda: scenario3_captive(**scenario_scale),
        rounds=1,
        iterations=1,
    )
    print_scenario(result)

    sbqa = result.run("sbqa").summary
    capacity = result.run("capacity").summary
    ratio = sbqa.mean_response_time / max(1e-9, capacity.mean_response_time)
    print(f"\nresponse-time ratio sbqa / capacity: {ratio:.2f}x (paper: 'not far')")
    print(
        f"satisfaction lift over capacity: provider "
        f"+{sbqa.provider_satisfaction_final - capacity.provider_satisfaction_final:.3f}, "
        f"consumer +{sbqa.consumer_satisfaction_final - capacity.consumer_satisfaction_final:.3f}"
    )

    assert_claims(result)
