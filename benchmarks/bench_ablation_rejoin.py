"""Ablation A4 (extension): churn with returns.

The paper's participants leave for good; real volunteer platforms see
them come back after a while.  This ablation re-runs the Scenario-4
comparison with a rejoin cooldown: departed participants return with a
fresh satisfaction window.  The question it answers: does rejoining
erase SbQA's advantage (because baselines get their capacity back), or
does it persist (because the baselines immediately re-dissatisfy the
returners)?

Expected shape: baselines churn the same participants repeatedly
(departures >> unique leavers) while SbQA's population stays stable;
SbQA still ends with at least as many providers online.
"""

from benchmarks.conftest import print_scenario
from repro.experiments.config import AutonomyConfig, ExperimentConfig, PolicySpec
from repro.experiments.report import render_comparison
from repro.experiments.runner import run_policies
from repro.workloads.boinc import BoincScenarioParams

POLICIES = [PolicySpec(name="sbqa"), PolicySpec(name="capacity"), PolicySpec(name="economic")]


def bench_rejoin_churn(benchmark, scenario_scale):
    config = ExperimentConfig(
        name="ablation-rejoin",
        seed=20090301,
        duration=scenario_scale["duration"],
        population=BoincScenarioParams(n_providers=scenario_scale["n_providers"]),
        autonomy=AutonomyConfig(
            mode="autonomous",
            warmup=min(300.0, scenario_scale["duration"] / 8.0),
            rejoin_cooldown=200.0,
        ),
    )

    results = benchmark.pedantic(
        lambda: run_policies(config, POLICIES), rounds=1, iterations=1
    )

    print()
    print(
        render_comparison(
            results,
            columns=(
                "provider_sat_final",
                "mean_rt",
                "providers_remaining",
                "provider_departures",
                "provider_rejoins",
                "capacity_remaining_fraction",
            ),
            title="Ablation A4: autonomous environment with rejoin (cooldown 200 s)",
        )
    )
    unique_leavers = {}
    for run in results:
        departures = run.summary.provider_departures
        unique = len({d.participant_id for d in run.hub.departures if d.kind == "provider"})
        unique_leavers[run.label] = unique
        mean_online = run.hub.providers_online.mean()
        print(
            f"  {run.label:<10} departures={departures:3d} over "
            f"{unique:3d} unique providers, time-avg online {mean_online:6.1f} "
            f"({'churn loop' if departures > unique else 'one-shot departures'})"
        )

    by_label = {run.label: run.summary for run in results}
    # rejoining happened for everyone who lost providers
    assert all(
        s.provider_rejoins > 0 for s in by_label.values() if s.provider_departures > 0
    )
    # SbQA dissatisfies the fewest *distinct* providers -- with returns,
    # end-of-run population snapshots oscillate with the churn-loop
    # phase, but who gets driven out at all is the stable signal.
    # (small slack vs capacity: at bench scale the two sets differ by a
    # handful of borderline selective providers)
    assert unique_leavers["sbqa"] <= unique_leavers["capacity"] + 3
    assert unique_leavers["sbqa"] <= unique_leavers["economic"]
    # and the satisfaction advantage persists under churn loops
    assert (
        by_label["sbqa"].provider_satisfaction_final
        > by_label["capacity"].provider_satisfaction_final
    )
