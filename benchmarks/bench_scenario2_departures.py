"""Scenario 2 bench: predicting departures by dissatisfaction.

Regenerates the demo's churn experiment: the same baselines as Scenario
1 but in an *autonomous* environment -- providers leave below
satisfaction 0.35, consumers below 0.5.  Prints the departure timeline
and the per-archetype breakdown that shows dissatisfaction *predicting*
who leaves.
"""

from benchmarks.conftest import assert_claims, print_scenario
from repro.experiments.scenarios import scenario2_departures


def bench_scenario2(benchmark, scenario_scale):
    result = benchmark.pedantic(
        lambda: scenario2_departures(**scenario_scale),
        rounds=1,
        iterations=1,
    )
    print_scenario(result)

    for run in result.runs:
        print(f"\n{run.label}: departure timeline (first 10)")
        for departure in run.hub.departures[:10]:
            print(
                f"  t={departure.time:7.1f}  {departure.kind:<8} "
                f"{departure.participant_id:<14} sat={departure.satisfaction:.3f}"
            )
        by_archetype = {}
        for pid, archetype in run.population.archetype_of.items():
            provider = run.registry.provider(pid)
            by_archetype.setdefault(archetype, []).append(provider.online)
        for archetype, online_flags in sorted(by_archetype.items()):
            departed = online_flags.count(False)
            print(
                f"  {archetype:<11} departed {departed:3d} / {len(online_flags):3d}"
            )

    assert_claims(result)
