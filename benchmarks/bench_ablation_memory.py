"""Ablation A2: the satisfaction window size k.

Section II: satisfaction is computed over "the k last interactions ...
The k value may be different for each participant depending on its
memory capacity."  This ablation sweeps k in an autonomous SbQA run:
small windows make satisfaction noisy (spurious threshold crossings ->
more departures), large windows react slowly.  Prints departures and
satisfaction volatility per k.
"""

from benchmarks.conftest import print_scenario
from repro.analysis.stats import stdev
from repro.analysis.tables import render_table
from repro.experiments.config import AutonomyConfig, ExperimentConfig, PolicySpec
from repro.experiments.runner import run_once
from repro.workloads.boinc import BoincScenarioParams

MEMORY_VALUES = (10, 50, 100, 300)


def run_with_memory(memory: int, duration: float, n_providers: int):
    config = ExperimentConfig(
        name=f"ablation-memory-{memory}",
        seed=20090301,
        duration=duration,
        population=BoincScenarioParams(n_providers=n_providers, memory=memory),
        autonomy=AutonomyConfig(mode="autonomous", warmup=duration / 8.0),
    )
    return run_once(config, PolicySpec(name="sbqa"))


def bench_memory_window(benchmark, scenario_scale):
    duration = scenario_scale["duration"] / 2
    n_providers = scenario_scale["n_providers"]

    def sweep():
        return [run_with_memory(m, duration, n_providers) for m in MEMORY_VALUES]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for memory, result in zip(MEMORY_VALUES, results):
        volatility = stdev(result.hub.provider_satisfaction.values)
        rows.append(
            [
                memory,
                result.summary.provider_departures,
                result.summary.providers_remaining,
                result.summary.provider_satisfaction_final,
                volatility,
            ]
        )
    print()
    print(
        render_table(
            ["k (window)", "prov departures", "prov online", "final prov sat", "sat volatility"],
            rows,
            title="Ablation A2: satisfaction memory size",
        )
    )

    # shape: the shortest window must not be *less* volatile than the longest
    shortest, longest = rows[0], rows[-1]
    assert shortest[4] >= longest[4] * 0.5
    # every configuration keeps a working system
    assert all(r.summary.queries_completed > 0 for r in results)
