"""Ablation A2: the satisfaction window size k.

Section II: satisfaction is computed over "the k last interactions ...
The k value may be different for each participant depending on its
memory capacity."  This ablation sweeps k in an autonomous SbQA run:
small windows make satisfaction noisy (spurious threshold crossings ->
more departures), large windows react slowly.  Prints departures and
satisfaction volatility per k.

Expressed through the sweep engine like the other ablations (one
``population.memory`` axis), with ``keep_runs`` opted in: satisfaction
*volatility* is the spread of the per-run satisfaction time series,
which lives on the metrics hub of each full
:class:`~repro.experiments.runner.RunResult` -- exactly what
``keep_runs`` retains through aggregation (serial execution only).
"""

from repro.analysis.stats import stdev
from repro.analysis.tables import render_table
from repro.api.builder import Experiment
from repro.api.sweep import SweepSession

MEMORY_VALUES = (10, 50, 100, 300)


def build_sweep(duration: float, n_providers: int):
    """The A2 grid: satisfaction window k over an autonomous base."""
    return (
        Experiment.builder()
        .named("ablation-memory")
        .seed(20090301)
        .duration(duration)
        .providers(n_providers)
        .autonomous(warmup=duration / 8.0)
        .policy("sbqa")
        .sweep()
        .named("ablation-memory")
        .axis("population.memory", MEMORY_VALUES, label="memory")
        .keep_runs()
        .build()
    )


def bench_memory_window(benchmark, scenario_scale):
    duration = scenario_scale["duration"] / 2
    n_providers = scenario_scale["n_providers"]
    sweep = build_sweep(duration, n_providers)

    def run_sweep():
        return SweepSession(sweep).run()

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for point in result.points:
        policy = point.policies[0]
        run = policy.run(0)  # retained by keep_runs
        volatility = stdev(run.hub.provider_satisfaction.values)
        rows.append(
            [
                point.point.coords["memory"],
                run.summary.provider_departures,
                run.summary.providers_remaining,
                run.summary.provider_satisfaction_final,
                volatility,
            ]
        )
    print()
    print(
        render_table(
            ["k (window)", "prov departures", "prov online", "final prov sat", "sat volatility"],
            rows,
            title="Ablation A2: satisfaction memory size",
        )
    )

    # shape: the shortest window must not be *less* volatile than the longest
    shortest, longest = rows[0], rows[-1]
    assert shortest[4] >= longest[4] * 0.5
    # every configuration keeps a working system
    assert all(
        policy.summary.queries_completed > 0 for _, policy in result.cells()
    )
