"""Micro-benchmarks M1: the allocator's hot paths.

Times the three kernels every mediation executes -- the SQLB score, the
KnBest selection and a full mediator round trip -- so regressions in
the per-query cost are caught independently of scenario noise.
"""

from repro.allocation.capacity import CapacityBasedPolicy
from repro.core.knbest import KnBestSelector
from repro.core.mediator import Mediator
from repro.core.policy import AllocationContext
from repro.core.sbqa import SbQAConfig, SbQAPolicy
from repro.core.scoring import sqlb_score
from repro.des.network import Network
from repro.des.rng import RandomRoot, RandomStream
from repro.des.scheduler import Simulator
from repro.system.consumer import Consumer
from repro.system.provider import Provider
from repro.system.query import Query
from repro.system.registry import SystemRegistry


def build_system(n_providers=100, seed=13):
    sim = Simulator()
    network = Network(sim)
    registry = SystemRegistry()
    root = RandomRoot(seed)
    stream = root.stream("micro/prefs")
    providers = [
        Provider(
            sim,
            network,
            participant_id=f"p{i:03d}",
            capacity=stream.uniform(0.5, 2.0),
            preferences={"c0": stream.uniform(-1.0, 1.0)},
        )
        for i in range(n_providers)
    ]
    for provider in providers:
        registry.add_provider(provider)
    consumer = Consumer(
        sim,
        network,
        participant_id="c0",
        preferences={p.participant_id: stream.uniform(-1.0, 1.0) for p in providers},
    )
    registry.add_consumer(consumer)
    return sim, network, registry, consumer, providers


def bench_sqlb_score_kernel(benchmark):
    """Definition 3, both branches, 200 evaluations per round."""
    pairs = [((i % 20) / 10.0 - 1.0, ((i * 7) % 20) / 10.0 - 1.0) for i in range(200)]

    def kernel():
        total = 0.0
        for pi, ci in pairs:
            total += sqlb_score(pi, ci, 0.5)
        return total

    benchmark(kernel)


def bench_knbest_selection(benchmark):
    """Two-stage selection over 100 candidates."""
    _, _, registry, _, providers = build_system()
    selector = KnBestSelector(k=20, kn=10, stream=RandomStream(5))
    benchmark(lambda: selector.select(providers))


def bench_sbqa_policy_select(benchmark):
    """One full SbQA decision (sample, consult, score, rank)."""
    sim, network, registry, consumer, providers = build_system()
    policy = SbQAPolicy(SbQAConfig(k=20, kn=10), RandomStream(3))
    ctx = AllocationContext(now=0.0)

    def decide():
        query = Query(
            consumer=consumer, topic="c0", service_demand=10.0, n_results=2,
            issued_at=sim.now,
        )
        return policy.select(query, providers, ctx)

    benchmark(decide)


def bench_full_mediation_sbqa(benchmark):
    """Mediator round trip including bookkeeping and dispatch scheduling."""
    sim, network, registry, consumer, providers = build_system()
    policy = SbQAPolicy(SbQAConfig(k=20, kn=10), RandomStream(3))
    mediator = Mediator(sim, network, registry, policy, keep_records=False)

    def mediate():
        query = Query(
            consumer=consumer, topic="c0", service_demand=10.0, n_results=2,
            issued_at=sim.now,
        )
        return mediator.mediate(query)

    benchmark.pedantic(mediate, rounds=20, iterations=50)


def bench_full_mediation_capacity(benchmark):
    """Baseline mediator round trip (no consultation) for comparison."""
    sim, network, registry, consumer, providers = build_system()
    mediator = Mediator(sim, network, registry, CapacityBasedPolicy(), keep_records=False)

    def mediate():
        query = Query(
            consumer=consumer, topic="c0", service_demand=10.0, n_results=2,
            issued_at=sim.now,
        )
        return mediator.mediate(query)

    benchmark.pedantic(mediate, rounds=20, iterations=50)
