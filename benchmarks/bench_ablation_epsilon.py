"""Ablation A1: why the epsilon guard exists (Definition 3).

The paper: "Parameter eps > 0, usually set to 1, prevents the
provider's score from taking 0 values when the consumer's or provider's
intention is equal to 1."  The failure mode with a vanishing epsilon:
a provider with ``PI = 1`` on the negative branch scores
``-((1-1+eps)^w * ...) -> -0`` -- the *best possible* negative score --
so a provider the consumer fully objects to (``CI = -1``) outranks
every other objectionable pairing.  One side's enthusiasm erases the
other side's veto.

This bench quantifies that: for several epsilon values it measures the
fraction of "veto" comparisons decided correctly -- a (PI=1, CI=-1)
pair should rank *below* a (PI=0, CI=+c) pair for any c > 0 -- and
times the scoring kernel.
"""

from repro.analysis.tables import render_table
from repro.core.scoring import sqlb_score

EPSILONS = (1e-9, 0.01, 0.1, 0.5, 1.0, 2.0)
#: Consumer intentions of the comparison pairs (provider neutral).
CONSUMER_GRID = [i / 50.0 for i in range(1, 50)]  # (0, 1)


def veto_respected_fraction(epsilon: float, omega: float = 0.5) -> float:
    """Share of comparisons where the consumer's total objection wins.

    The "eager pariah" (PI=1, CI=-1) must rank below every
    (PI=0, CI=c>0) pairing -- the consumer strictly prefers the
    neutral provider it actually wants.
    """
    pariah = sqlb_score(1.0, -1.0, omega, epsilon)
    respected = sum(
        1 for c in CONSUMER_GRID if sqlb_score(0.0, c, omega, epsilon) > pariah
    )
    return respected / len(CONSUMER_GRID)


def bench_epsilon_guard(benchmark):
    rows = [[eps, veto_respected_fraction(eps)] for eps in EPSILONS]
    print()
    print(
        render_table(
            ["epsilon", "consumer veto respected (fraction)"],
            rows,
            title="Ablation A1: epsilon prevents score collapse at intention 1",
            decimals=4,
        )
    )

    # vanishing epsilon: the eager pariah beats everyone -- score collapse
    assert veto_respected_fraction(1e-9) < 0.05
    # the paper's default restores a substantial share of the vetoes ...
    assert veto_respected_fraction(1.0) > 0.4
    # ... and the effect is monotone in epsilon across the sweep
    fractions = [veto_respected_fraction(eps) for eps in EPSILONS]
    assert fractions == sorted(fractions)

    # time the scoring kernel itself (the per-mediation hot path)
    grid = [i / 50.0 - 1.0 for i in range(100)]

    def score_grid():
        total = 0.0
        for ci in grid:
            total += sqlb_score(0.7, ci, 0.5, 1.0)
        return total

    benchmark(score_grid)
