"""Scenario 7 bench: playing a BOINC participant.

Regenerates the demo's interactive scenario with deterministic probes:
a volunteer devoted to the unpopular project and a project trusting a
small provider subset, injected into every mediation.  The paper's
claim: only the SQLB mediation lets a participant reach its objectives
in all cases.
"""

from benchmarks.conftest import assert_claims, print_scenario
from repro.experiments.scenarios import scenario7_focal_participant


def bench_scenario7(benchmark, scenario_scale):
    result = benchmark.pedantic(
        lambda: scenario7_focal_participant(**scenario_scale),
        rounds=1,
        iterations=1,
    )
    print_scenario(result)

    print("\nfocal provider: proposals seen / performed, by mediation")
    for run in result.runs:
        focal = run.registry.provider("focal-provider")
        print(
            f"  {run.label:<13} proposed={focal.tracker.total_proposed:5d} "
            f"performed={focal.tracker.total_performed:5d} "
            f"sat={focal.satisfaction:.3f}"
        )

    assert_claims(result)
