"""Shared bench configuration.

Every scenario bench runs at the DESIGN.md reference scale by default
(120 providers, 2400 simulated seconds -- the scale EXPERIMENTS.md
records).  Set ``SBQA_BENCH_SCALE=small`` to run a fast smoke pass
(70 providers, 1000 s).

Run with ``pytest benchmarks/ --benchmark-only`` and add ``-s`` to see
the scenario reports (tables + claim checks) each bench prints.
"""

from __future__ import annotations

import os

import pytest

_SCALES = {
    "full": {"duration": 2400.0, "n_providers": 120},
    "small": {"duration": 1000.0, "n_providers": 70},
}


@pytest.fixture(scope="session")
def scenario_scale() -> dict:
    """Scenario size knobs, selected by SBQA_BENCH_SCALE."""
    name = os.environ.get("SBQA_BENCH_SCALE", "full").lower()
    if name not in _SCALES:
        raise ValueError(
            f"SBQA_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return dict(_SCALES[name])


def print_scenario(result) -> None:
    """Print a scenario report under a visible separator."""
    print()
    print(result.report())


def assert_claims(result) -> None:
    """Fail the bench if any paper claim check failed."""
    failed = [c for c in result.claims if not c.passed]
    assert not failed, "failed claims: " + "; ".join(
        f"{c.description} ({c.details})" for c in failed
    )
