"""Core hot-path bench: mediation throughput + engine digest parity.

The measurement harness lives in :mod:`repro.perf.hotpath` (shared with
the ``sbqa bench`` CLI subcommand); this script is the standalone /CI
entry point::

    PYTHONPATH=src python benchmarks/bench_core_hotpath.py --json BENCH_core.json
    PYTHONPATH=src python benchmarks/bench_core_hotpath.py --smoke

It times four configurations of a mediation-bound SbQA system --
the fast engine (fused SoA kernel), the same engine pinned to the
scalar oracle path, the event-faithful engine, and a reconstruction of
the pre-engine ("seed") hot path with per-read window recomputation
and eager trace formatting -- and byte-compares the fast/event and
fused/scalar result digests on a mixed scenario (autonomous churn +
crashes + two policies).  It also walks the population scaling axis
(flat and federated: N sharded across K consistent-hash mediators).
Exit status is non-zero when parity breaks or the fast engine falls
below the required speedup over the seed baseline (or the optional
absolute-throughput / scaling-flatness floors).
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small, CI-sized configuration",
    )
    parser.add_argument(
        "--mediations", type=int, default=None,
        help="mediations per timing sample (default 4000; smoke 1200)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing samples per engine, best-of (default 3; smoke 2)",
    )
    parser.add_argument(
        "--json", dest="json_out", default=None,
        help="write the bench record (BENCH_core.json layout) to a file",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="fail when fast-vs-seed speedup is below this (default 2.0)",
    )
    parser.add_argument(
        "--min-mediate-per-s", type=float, default=None,
        help="fail when the fast engine's absolute mediation throughput "
        "is below this many mediations/second",
    )
    parser.add_argument(
        "--min-registry-speedup", type=float, default=None,
        help="fail when the indexed-vs-scan capable_providers speedup at "
        "the largest population point is below this",
    )
    parser.add_argument(
        "--policy", action="append", default=None, metavar="NAME",
        help="policy to include in the fast-vs-event matrix (repeatable; "
        "default: the built-in matrix set)",
    )
    parser.add_argument(
        "--scale-providers", action="append", type=int, default=None,
        metavar="N",
        help="population size for the scaling axis and the registry "
        "lookup bench (repeatable; default 120/500/2000/10000, smoke "
        "120/600)",
    )
    parser.add_argument(
        "--max-n", type=int, default=None,
        help="cap the population axes at this N (drops larger default "
        "points; joins the grid itself when above every default point)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="pin every federation point to this shard count instead of "
        "the proportional default schedule",
    )
    parser.add_argument(
        "--min-scaling-ratio", type=float, default=None,
        help="fail when the flat-engine flatness ratio (fast-engine "
        "throughput at max-N over min-N) is below this",
    )
    parser.add_argument(
        "--min-federation-ratio", type=float, default=None,
        help="fail when the federation flatness ratio (throughput at the "
        "largest federated point over the smallest) is below this",
    )
    parser.add_argument(
        "--min-parallel-speedup", type=float, default=None,
        help="fail when the parallel-federation speedup (serial "
        "wall-clock over the slowest shard-group slice at the best "
        "worker count) is below this",
    )
    parser.add_argument(
        "--skip-parity", action="store_true",
        help="skip the digest-parity runs (timing only)",
    )
    args = parser.parse_args(argv)

    from repro.perf.hotpath import format_report, run_bench, write_record

    record = run_bench(
        smoke=args.smoke,
        mediations=args.mediations,
        repeats=args.repeats,
        check_parity=not args.skip_parity,
        policies=args.policy,
        scale_providers=args.scale_providers,
        max_n=args.max_n,
        shards=args.shards,
    )
    print(format_report(record))
    if args.json_out:
        write_record(record, args.json_out)
        print(f"\nbench record written to {args.json_out}")

    failed = False
    parity = record.get("parity")
    if parity is not None and not parity["identical"]:
        print("FAIL: fast and event engines produced different digests",
              file=sys.stderr)
        failed = True
    if parity is not None and not parity.get("scalar_identical", True):
        print("FAIL: fused kernel and scalar oracle produced different "
              "digests", file=sys.stderr)
        failed = True
    if args.min_mediate_per_s is not None:
        mediate_per_s = record["throughput"]["fast"]["mediate_per_s"]
        if mediate_per_s < args.min_mediate_per_s:
            print(
                f"FAIL: fast-engine throughput {mediate_per_s:,.0f}/s is "
                f"below the required {args.min_mediate_per_s:,.0f}/s",
                file=sys.stderr,
            )
            failed = True
    speedup = record["speedup"]["fast_vs_seed"]
    if speedup < args.min_speedup:
        print(
            f"FAIL: fast-engine speedup {speedup:.2f}x is below the "
            f"required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if args.min_scaling_ratio is not None:
        scaling_ratio = record["speedup"]["scaling_ratio"]
        if scaling_ratio < args.min_scaling_ratio:
            print(
                f"FAIL: scaling flatness {scaling_ratio:.2f}x (fast-engine "
                f"throughput at max-N over min-N) is below the required "
                f"{args.min_scaling_ratio:.2f}x",
                file=sys.stderr,
            )
            failed = True
    if args.min_federation_ratio is not None:
        flat_ratio = record["federation"]["flat_ratio"]
        if flat_ratio < args.min_federation_ratio:
            print(
                f"FAIL: federation flatness {flat_ratio:.2f}x is below "
                f"the required {args.min_federation_ratio:.2f}x",
                file=sys.stderr,
            )
            failed = True
    if args.min_parallel_speedup is not None:
        parallel_speedup = record["speedup"]["parallel_vs_serial"]
        if parallel_speedup < args.min_parallel_speedup:
            print(
                f"FAIL: parallel-federation speedup {parallel_speedup:.2f}x "
                f"is below the required {args.min_parallel_speedup:.2f}x",
                file=sys.stderr,
            )
            failed = True
    if args.min_registry_speedup is not None:
        registry = record["registry"]
        largest = max(registry, key=int)
        registry_speedup = registry[largest]["speedup"]
        if registry_speedup < args.min_registry_speedup:
            print(
                f"FAIL: indexed capable_providers speedup "
                f"{registry_speedup:.2f}x at N={largest} is below the "
                f"required {args.min_registry_speedup:.2f}x",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
