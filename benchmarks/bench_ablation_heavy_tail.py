"""Ablation A6 (extension): heavy-tailed service demands.

The scenarios draw demands from a moderate-variance lognormal.  Real
volunteer-computing tasks are often heavy-tailed: a few enormous work
units dominate total load.  This ablation switches the demand model to
a Pareto with the same mean and compares how the techniques' *tail*
response times (p99) degrade.

Expected shape: everyone's p99 suffers under the heavy tail, but the
techniques that consider load before committing (economic bids on
expected delay; SbQA filters by utilization in KnBest stage 2) degrade
less than the headroom-snapshot capacity baseline, whose "most
available capacity" choice says nothing about the monster job just
enqueued elsewhere.
"""

from benchmarks.conftest import print_scenario
from repro.analysis.tables import render_table
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import run_policies
from repro.workloads.boinc import BoincScenarioParams

POLICIES = [PolicySpec(name="sbqa"), PolicySpec(name="capacity"), PolicySpec(name="economic")]


def bench_heavy_tail(benchmark, scenario_scale):
    duration = scenario_scale["duration"] / 2
    n_providers = scenario_scale["n_providers"]

    def sweep():
        out = {}
        for distribution in ("lognormal", "pareto"):
            config = ExperimentConfig(
                name=f"ablation-tail-{distribution}",
                seed=20090301,
                duration=duration,
                population=BoincScenarioParams(
                    n_providers=n_providers,
                    demand_distribution=distribution,
                ),
            )
            out[distribution] = run_policies(config, POLICIES)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    degradation = {}
    for spec in POLICIES:
        label = spec.label
        light = next(r for r in results["lognormal"] if r.label == label).summary
        heavy = next(r for r in results["pareto"] if r.label == label).summary
        factor = heavy.p99_response_time / max(1e-9, light.p99_response_time)
        degradation[label] = factor
        rows.append(
            [
                label,
                light.p99_response_time,
                heavy.p99_response_time,
                factor,
                light.mean_response_time,
                heavy.mean_response_time,
            ]
        )
    print()
    print(
        render_table(
            [
                "policy",
                "p99 rt lognormal (s)",
                "p99 rt pareto (s)",
                "p99 blow-up",
                "mean rt lognormal",
                "mean rt pareto",
            ],
            rows,
            title="Ablation A6: heavy-tailed demands (same mean)",
        )
    )

    # heavy tails hurt everyone's p99
    assert all(factor > 1.0 for factor in degradation.values())
    # load-aware selection degrades no worse than the headroom snapshot
    assert degradation["sbqa"] <= degradation["capacity"] * 1.25
    # all runs completed work under both distributions
    for runs in results.values():
        assert all(r.summary.queries_completed > 0 for r in runs)
