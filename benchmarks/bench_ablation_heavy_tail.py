"""Ablation A6 (extension): heavy-tailed service demands.

The scenarios draw demands from a moderate-variance lognormal.  Real
volunteer-computing tasks are often heavy-tailed: a few enormous work
units dominate total load.  This ablation switches the demand model to
a Pareto with the same mean and compares how the techniques' *tail*
response times (p99) degrade.

Expected shape: everyone's p99 suffers under the heavy tail, but the
techniques that consider load before committing (economic bids on
expected delay; SbQA filters by utilization in KnBest stage 2) degrade
less than the headroom-snapshot capacity baseline, whose "most
available capacity" choice says nothing about the monster job just
enqueued elsewhere.

Expressed through the sweep engine: one ``population.demand_distribution``
axis (a *string-valued* knob) over a three-policy base comparison.
"""

from repro.analysis.tables import render_table
from repro.api.builder import Experiment
from repro.api.sweep import SweepSession

POLICY_LABELS = ("sbqa", "capacity", "economic")
DISTRIBUTIONS = ("lognormal", "pareto")


def build_sweep(duration: float, n_providers: int):
    """The A6 grid: demand distribution x the three main techniques."""
    builder = (
        Experiment.builder()
        .named("ablation-tail")
        .seed(20090301)
        .duration(duration)
        .providers(n_providers)
    )
    for name in POLICY_LABELS:
        builder.policy(name)
    return (
        builder.sweep()
        .named("ablation-tail")
        .axis("population.demand_distribution", DISTRIBUTIONS, label="demand")
        .build()
    )


def bench_heavy_tail(benchmark, scenario_scale):
    duration = scenario_scale["duration"] / 2
    n_providers = scenario_scale["n_providers"]
    sweep = build_sweep(duration, n_providers)

    def run_sweep():
        return SweepSession(sweep).run()

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    light = result.point("demand=lognormal")
    heavy = result.point("demand=pareto")
    rows = []
    degradation = {}
    for label in POLICY_LABELS:
        light_summary = light.policy(label).summary
        heavy_summary = heavy.policy(label).summary
        factor = heavy_summary.p99_response_time / max(
            1e-9, light_summary.p99_response_time
        )
        degradation[label] = factor
        rows.append(
            [
                label,
                light_summary.p99_response_time,
                heavy_summary.p99_response_time,
                factor,
                light_summary.mean_response_time,
                heavy_summary.mean_response_time,
            ]
        )
    print()
    print(
        render_table(
            [
                "policy",
                "p99 rt lognormal (s)",
                "p99 rt pareto (s)",
                "p99 blow-up",
                "mean rt lognormal",
                "mean rt pareto",
            ],
            rows,
            title="Ablation A6: heavy-tailed demands (same mean)",
        )
    )

    # heavy tails hurt everyone's p99
    assert all(factor > 1.0 for factor in degradation.values())
    # load-aware selection degrades no worse than the headroom snapshot
    assert degradation["sbqa"] <= degradation["capacity"] * 1.25
    # all runs completed work under both distributions
    assert all(
        policy.summary.queries_completed > 0 for _, policy in result.cells()
    )
