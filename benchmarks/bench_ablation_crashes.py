"""Ablation A5 (extension): abrupt crashes and the replication defence.

BOINC replicates queries ("consumers may create several instances of a
query so as to validate results returned by providers") partly because
volunteers fail abruptly.  The graceful churn model cannot show that
defence working; this ablation injects crashes (exponential MTTF,
repair after 120 s) and compares:

* ``n=1``          -- one replica, no safety margin;
* ``n=2, quorum=2``-- two replicas, *both* required: more exposure;
* ``n=2, quorum=1``-- two replicas, first answer wins: the defence.

Expected shape: the write-off (timeout) rate of ``n=2, quorum=1`` is
the lowest -- a single crash cannot kill the query -- and its response
time beats ``quorum=2`` (first answer wins).
"""

import dataclasses

from repro.analysis.tables import render_table
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import run_once
from repro.system.failures import FailureConfig
from repro.workloads.boinc import BoincScenarioParams

VARIANTS = (
    ("n=1", dict(n_results=1, quorum=None)),
    ("n=2 quorum=2", dict(n_results=2, quorum=None)),
    ("n=2 quorum=1", dict(n_results=2, quorum=1)),
)


def bench_crash_replication(benchmark, scenario_scale):
    duration = scenario_scale["duration"] / 2
    n_providers = scenario_scale["n_providers"]

    def sweep():
        results = []
        for label, overrides in VARIANTS:
            population = BoincScenarioParams(n_providers=n_providers, **overrides)
            config = ExperimentConfig(
                name=f"ablation-crash-{label}",
                seed=20090301,
                duration=duration,
                population=population,
                failures=FailureConfig(mttf=600.0, repair_time=120.0, start=60.0),
                result_timeout=240.0,
            )
            results.append(run_once(config, PolicySpec(name="sbqa", label=label)))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for result in results:
        s = result.summary
        write_off_rate = s.queries_timed_out / max(1, s.queries_issued)
        rows.append(
            [
                result.label,
                s.provider_crashes,
                s.queries_lost_to_crashes,
                s.queries_timed_out,
                write_off_rate,
                s.mean_response_time,
                s.queries_completed,
            ]
        )
    print()
    print(
        render_table(
            [
                "variant",
                "crashes",
                "lost results",
                "timed out",
                "write-off rate",
                "mean rt (s)",
                "completed",
            ],
            rows,
            title="Ablation A5: crash injection vs replication (SbQA)",
            decimals=4,
        )
    )

    by_label = {row[0]: row for row in rows}
    # crashes actually happened in every variant
    assert all(row[1] > 0 for row in rows)
    # the quorum defence: lowest write-off rate of the three
    assert by_label["n=2 quorum=1"][4] <= by_label["n=1"][4]
    assert by_label["n=2 quorum=1"][4] <= by_label["n=2 quorum=2"][4]
    # requiring both replicas is the most exposed variant
    assert by_label["n=2 quorum=2"][4] >= by_label["n=1"][4]
    # first-answer-wins also beats both-required on response time
    assert by_label["n=2 quorum=1"][5] <= by_label["n=2 quorum=2"][5]
