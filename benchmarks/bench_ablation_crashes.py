"""Ablation A5 (extension): abrupt crashes and the replication defence.

BOINC replicates queries ("consumers may create several instances of a
query so as to validate results returned by providers") partly because
volunteers fail abruptly.  The graceful churn model cannot show that
defence working; this ablation injects crashes (exponential MTTF,
repair after 120 s) and compares:

* ``n=1``          -- one replica, no safety margin;
* ``n=2, quorum=2``-- two replicas, *both* required: more exposure;
* ``n=2, quorum=1``-- two replicas, first answer wins: the defence.

Expected shape: the write-off (timeout) rate of ``n=2, quorum=1`` is
the lowest -- a single crash cannot kill the query -- and its response
time beats ``quorum=2`` (first answer wins).

The three variants vary ``n_results`` and ``quorum`` *together*, which
is exactly what the sweep engine's zipped axes express: both axes share
a ``zip_group`` and advance in lockstep instead of crossing.
"""

from repro.analysis.tables import render_table
from repro.api.builder import Experiment
from repro.api.sweep import SweepSession

#: The zipped variant coordinates: (n_results, quorum) per point.
N_RESULTS = (1, 2, 2)
QUORUMS = (None, None, 1)


def build_sweep(duration: float, n_providers: int):
    """The A5 grid: replication factor x quorum, zipped."""
    return (
        Experiment.builder()
        .named("ablation-crash")
        .seed(20090301)
        .duration(duration)
        .providers(n_providers)
        .failures(mttf=600.0, repair_time=120.0, start=60.0, result_timeout=240.0)
        .policy("sbqa")
        .sweep()
        .named("ablation-crash")
        .axis("population.n_results", N_RESULTS, label="n", zip_group="variant")
        .axis("population.quorum", QUORUMS, label="quorum", zip_group="variant")
        .build()
    )


def bench_crash_replication(benchmark, scenario_scale):
    duration = scenario_scale["duration"] / 2
    n_providers = scenario_scale["n_providers"]
    sweep = build_sweep(duration, n_providers)
    assert len(sweep) == 3  # zipped, not a 3x3 product

    def run_sweep():
        return SweepSession(sweep).run()

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    by_label = {}
    for point in result.points:
        s = point.policies[0].summary
        write_off_rate = s.queries_timed_out / max(1, s.queries_issued)
        row = [
            point.label,
            s.provider_crashes,
            s.queries_lost_to_crashes,
            s.queries_timed_out,
            write_off_rate,
            s.mean_response_time,
            s.queries_completed,
        ]
        rows.append(row)
        by_label[point.label] = row
    print()
    print(
        render_table(
            [
                "variant",
                "crashes",
                "lost results",
                "timed out",
                "write-off rate",
                "mean rt (s)",
                "completed",
            ],
            rows,
            title="Ablation A5: crash injection vs replication (SbQA)",
            decimals=4,
        )
    )

    solo = by_label["n=1, quorum=none"]
    both = by_label["n=2, quorum=none"]
    first = by_label["n=2, quorum=1"]
    # crashes actually happened in every variant
    assert all(row[1] > 0 for row in rows)
    # the quorum defence: lowest write-off rate of the three
    assert first[4] <= solo[4]
    assert first[4] <= both[4]
    # requiring both replicas is the most exposed variant
    assert both[4] >= solo[4]
    # first-answer-wins also beats both-required on response time
    assert first[5] <= both[5]
