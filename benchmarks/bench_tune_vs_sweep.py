"""Adaptive tuning vs exhaustive sweeping on the 12-point omega grid.

The tuner's pitch is "same winner, fewer runs": successive-halving
rungs with Welch/Holm elimination should retire dominated grid points
early instead of replicating them to full depth.  This bench runs the
shipped ``examples/specs/tune_omega.json`` study -- 6 omega values x
2 KnBest pool sizes over a three-policy comparison, 216 runs
exhaustively -- both ways and checks the pitch:

* the tune finishes within its run budget (<= 60% of exhaustive);
* it selects the same winning point as the exhaustive sweep;
* surviving points aggregate bit-for-bit identically to the sweep.

The grid is pinned to the example spec (not ``scenario_scale``): the
elimination trace is a deterministic function of the spec, and this is
the exact configuration the docs and the CI smoke job reference.
"""

import json
import time
from pathlib import Path

from repro.analysis.stats import mean
from repro.analysis.tables import render_table
from repro.api.sweep import SweepSession
from repro.api.tune import TuneSession, TuneSpec

SPEC_PATH = Path(__file__).resolve().parent.parent / "examples" / "specs" / "tune_omega.json"


def bench_tune_vs_sweep(benchmark):
    spec = TuneSpec.load(SPEC_PATH)

    def run_tune():
        return TuneSession(spec).run(parallel=True)

    tune = benchmark.pedantic(run_tune, rounds=1, iterations=1)

    started = time.perf_counter()
    sweep = SweepSession(spec.sweep).run(parallel=True)
    sweep_wall = time.perf_counter() - started

    objective = spec.objective
    policy = spec.objective_policy.label
    sweep_best = max(
        sweep.points, key=lambda p: mean(p.policy(policy).values(objective))
    )

    print()
    print(
        render_table(
            ["strategy", "runs", "points at full depth", "winner"],
            [
                [
                    "exhaustive sweep",
                    tune.exhaustive_runs,
                    len(sweep.points),
                    sweep_best.label,
                ],
                [
                    "adaptive tune",
                    tune.runs_executed,
                    len([o for o in tune.outcomes if o.complete]),
                    tune.winner.label,
                ],
            ],
            title=f"tune vs sweep on {spec.sweep.name} (objective: {objective})",
        )
    )
    print(
        f"tune used {tune.run_fraction:.0%} of the exhaustive runs "
        f"({tune.runs_saved} saved); exhaustive wall {sweep_wall:.1f}s"
    )
    print(tune.table())

    # the acceptance bar: same winner at <= 60% of the run count
    assert tune.status == "completed"
    assert tune.winner.label == sweep_best.label
    assert tune.run_fraction <= 0.6
    # surviving points are bit-for-bit the exhaustive sweep's
    exhaustive_points = {p["label"]: p for p in sweep.to_dict()["points"]}
    for point in tune.sweep_result().to_dict()["points"]:
        assert json.dumps(point, sort_keys=True) == json.dumps(
            exhaustive_points[point["label"]], sort_keys=True
        ), f"survivor {point['label']} diverged from the exhaustive sweep"
