"""Serving-subsystem bench: open-loop throughput + replay parity.

The measurement harness lives in :mod:`repro.perf.servebench` (shared
with ``sbqa bench --serve``); this script is the standalone / CI entry
point::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --json BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --smoke

It streams the three synthetic trace shapes (diurnal, flash-crowd,
heavy-tail) through the serve path end-to-end -- admission, injection
chains, incremental clock advancement, streaming quantiles -- and
reports sustained open-loop queries/second plus p99 ingress-delay and
response-time quantiles.  A digest-parity check (batch recording vs
serve replay) rides along; exit status is non-zero when it breaks.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small, CI-sized configuration (shorter traces, one repeat)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing samples per shape, best-of (default 2; smoke 1)",
    )
    parser.add_argument(
        "--json", dest="json_out", default=None,
        help="write the bench record (BENCH_serve.json layout) to a file",
    )
    args = parser.parse_args(argv)

    from repro.perf.servebench import (
        format_serve_report,
        run_serve_bench,
        write_serve_record,
    )

    record = run_serve_bench(smoke=args.smoke, repeats=args.repeats)
    print(format_serve_report(record))
    if args.json_out:
        write_serve_record(record, args.json_out)
        print(f"\nbench record written to {args.json_out}")
    if not record["parity"]["identical"]:
        print(
            "error: serve replay and batch recording produced different "
            "digests",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
