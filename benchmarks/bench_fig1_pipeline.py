"""Figure 1 bench: the mediation pipeline, observable stage by stage.

The paper's Figure 1 is the SbQA architecture diagram: query arrives,
KnBest narrows the provider set, SQLB collects intentions and scores,
the best min(n, kn) providers perform.  This bench traces real
mediations and prints the stage sequence, asserting the pipeline order
the figure depicts.
"""

from benchmarks.conftest import print_scenario
from repro.des.tracing import TraceRecorder
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import run_once
from repro.workloads.boinc import BoincScenarioParams

PIPELINE_ORDER = ["mediate", "knbest", "sqlb", "allocate"]


def bench_fig1_pipeline(benchmark):
    trace = TraceRecorder(enabled=True, capacity=5000)
    config = ExperimentConfig(
        name="fig1",
        seed=20090301,
        duration=120.0,
        population=BoincScenarioParams(n_providers=30),
    )

    result = benchmark.pedantic(
        lambda: run_once(config, PolicySpec(name="sbqa"), trace=trace),
        rounds=1,
        iterations=1,
    )

    # print the first three mediations, stage by stage
    print("\nFigure 1 pipeline trace (first mediations):")
    shown = 0
    for event in trace.events:
        print("  " + event.format())
        if event.category == "allocate":
            shown += 1
            if shown >= 3:
                break

    # assert the stage order holds for every traced query
    by_qid = {}
    for event in trace.events:
        qid = event.data.get("qid")
        if qid is not None:
            by_qid.setdefault(qid, []).append(event.category)
    assert by_qid, "no mediations were traced"
    complete = 0
    for qid, stages in by_qid.items():
        if "allocate" not in stages:
            continue  # truncated by the trace ring buffer
        complete += 1
        order = [stage for stage in stages if stage in PIPELINE_ORDER]
        assert order == PIPELINE_ORDER, f"query {qid}: pipeline ran {order}"
    assert complete > 0
    print(f"\npipeline order verified for {complete} mediations")
    assert result.summary.queries_completed > 0
