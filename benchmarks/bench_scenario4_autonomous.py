"""Scenario 4 bench: SbQA vs baselines under churn -- the headline.

Regenerates the demo's central demonstration: "SbQA can significantly
improve the performance of BOINC-based projects by preserving most
volunteers online and hence more computational resources."  Prints the
population and capacity trajectories behind the claim.
"""

from benchmarks.conftest import assert_claims, print_scenario
from repro.experiments.report import render_run_series
from repro.experiments.scenarios import scenario4_autonomous


def bench_scenario4(benchmark, scenario_scale):
    result = benchmark.pedantic(
        lambda: scenario4_autonomous(**scenario_scale),
        rounds=1,
        iterations=1,
    )
    print_scenario(result)
    print()
    print(render_run_series(result.runs, "providers_online"))
    print()
    print(render_run_series(result.runs, "total_capacity"))

    assert_claims(result)
