"""Scenario 1 bench: the satisfaction model over baseline techniques.

Regenerates the demo's first experiment: capacity-based [9] vs economic
[13] allocation in a *captive* BOINC platform, analysed through the
satisfaction model of Section II.  The printed comparison table and
satisfaction curves are the data the demo GUIs displayed; the claim
checks encode the paper's qualitative expectations.
"""

from benchmarks.conftest import assert_claims, print_scenario
from repro.experiments.scenarios import scenario1_satisfaction_model


def bench_scenario1(benchmark, scenario_scale):
    result = benchmark.pedantic(
        lambda: scenario1_satisfaction_model(**scenario_scale),
        rounds=1,
        iterations=1,
    )
    print_scenario(result)

    # per-archetype view: the interest-driven minority both baselines fail
    capacity = result.run("capacity")
    for archetype in ("enthusiast", "selective", "picky"):
        series = capacity.hub.group_satisfaction[f"archetype:{archetype}"]
        print(f"capacity / {archetype:<11} final satisfaction: {series.last:.3f}")

    assert_claims(result)
