"""Scenario 5 bench: self-adaptation to participants' expectations.

Regenerates the demo's adaptation experiment: when projects become
interested only in response times and volunteers only in their load,
the *same* SbQA process turns into a load balancer -- response times
drop and work spreads more evenly (lower Gini).
"""

from benchmarks.conftest import assert_claims, print_scenario
from repro.experiments.report import render_run_series
from repro.experiments.scenarios import scenario5_expectation_adaptation


def bench_scenario5(benchmark, scenario_scale):
    result = benchmark.pedantic(
        lambda: scenario5_expectation_adaptation(**scenario_scale),
        rounds=1,
        iterations=1,
    )
    print_scenario(result)
    print()
    print(render_run_series(result.runs, "response_time_mean"))
    print()
    print(render_run_series(result.runs, "utilization_gini"))

    interests = result.run("sbqa[interests]").summary
    performance = result.run("sbqa[performance]").summary
    print(
        f"\nadaptation effect: mean rt {interests.mean_response_time:.1f}s -> "
        f"{performance.mean_response_time:.1f}s, "
        f"work gini {interests.work_gini:.3f} -> {performance.work_gini:.3f}"
    )

    assert_claims(result)
