#!/usr/bin/env python
"""SbQA outside BOINC: an e-commerce marketplace.

The paper's introduction motivates SbQA with e-commerce (eBay, Google
AdWords): sellers have *dynamic* interests in query categories -- the
pharmaceutical company pushing its new insect repellent wants mosquito
queries this month and not next -- and buyers prefer reputable sellers.

This example builds that system from the library's primitives, without
the BOINC scenario builder:

* 4 buyer segments (consumers) issuing queries across 3 product
  categories with different mixes;
* 24 sellers (providers) with per-category capability restrictions and
  preference profiles, including one running a promotion (strong
  preference for one category);
* SbQA mediating, with reputation-blended buyer intentions.

Shows that the promotion seller captures its category, that capability
restrictions are honoured, and how a mid-run preference change (the
promotion ending) re-routes traffic -- the self-adaptation the title
promises.

Run:  python examples/ecommerce_marketplace.py        (~5 s)
"""

from repro.analysis.tables import render_table
from repro.core.intentions import ReputationBlendIntentions
from repro.core.mediator import Mediator
from repro.core.sbqa import SbQAConfig, SbQAPolicy
from repro.des.network import Network, UniformLatency
from repro.des.rng import RandomRoot
from repro.des.scheduler import Simulator
from repro.system.consumer import Consumer
from repro.system.provider import Provider
from repro.system.registry import SystemRegistry

CATEGORIES = ("electronics", "garden", "pharmacy")
DURATION = 4000.0
PROMO_END = 2000.0  # the advertising campaign ends mid-run

# ----------------------------------------------------------------------
# Kernel
# ----------------------------------------------------------------------
sim = Simulator()
root = RandomRoot(2024)
network = Network(sim, UniformLatency(0.01, 0.05, root.stream("latency")))
registry = SystemRegistry()

# ----------------------------------------------------------------------
# Sellers: 8 per category pair, one promotion-runner in pharmacy.
# ----------------------------------------------------------------------
seller_stream = root.stream("sellers")
sellers = []
for index in range(24):
    # each seller serves two of the three categories
    served = [CATEGORIES[index % 3], CATEGORIES[(index + 1) % 3]]
    topic_preferences = {
        category: seller_stream.uniform(-0.2, 0.6) for category in served
    }
    seller = Provider(
        sim,
        network,
        participant_id=f"seller-{index:02d}",
        capacity=seller_stream.uniform(0.8, 1.6),
        topic_preferences=topic_preferences,
        saturation_horizon=60.0,
    )
    registry.add_provider(seller, topics=served)
    sellers.append(seller)

promo_seller = sellers[2]  # serves pharmacy; runs the repellent campaign
promo_seller.topic_preferences["pharmacy"] = 0.95

# ----------------------------------------------------------------------
# Buyer segments with different category mixes.
# ----------------------------------------------------------------------
SEGMENTS = {
    "makers": {"electronics": 0.7, "garden": 0.3, "pharmacy": 0.0},
    "gardeners": {"electronics": 0.1, "garden": 0.8, "pharmacy": 0.1},
    "families": {"electronics": 0.3, "garden": 0.2, "pharmacy": 0.5},
    "clinics": {"electronics": 0.0, "garden": 0.0, "pharmacy": 1.0},
}
buyers = []
for name in SEGMENTS:
    stream = root.stream(f"buyer/{name}")
    buyer = Consumer(
        sim,
        network,
        participant_id=name,
        preferences={s.participant_id: stream.uniform(0.0, 0.6) for s in sellers},
        intention_model=ReputationBlendIntentions(alpha=0.4),
        rt_reference=30.0,
    )
    registry.add_consumer(buyer)
    buyers.append(buyer)

# ----------------------------------------------------------------------
# Mediation: SbQA with a small working set (marketplaces answer fast).
# ----------------------------------------------------------------------
policy = SbQAPolicy(SbQAConfig(k=10, kn=5), root.stream("knbest"))
mediator = Mediator(sim, network, registry, policy, keep_records=True)
for buyer in buyers:
    buyer.attach_mediator(mediator)

# ----------------------------------------------------------------------
# Workload: Poisson queries per buyer, category drawn from the mix.
# ----------------------------------------------------------------------
def start_buyer(buyer: Consumer, rate: float) -> None:
    mix = SEGMENTS[buyer.participant_id]
    stream = root.stream(f"arrivals/{buyer.participant_id}")

    def issue_next() -> None:
        if sim.now > DURATION:
            return
        category = stream.weighted_choice(list(mix), list(mix.values()))
        buyer.issue(category, service_demand=stream.lognormal(10.0, 0.4))
        sim.schedule_in(stream.exponential(1.0 / rate), issue_next)

    sim.schedule_in(stream.exponential(1.0 / rate), issue_next)


for buyer in buyers:
    start_buyer(buyer, rate=0.35)

# the promotion ends mid-run: the seller's interest reverts to neutral
sim.schedule_at(
    PROMO_END, lambda: promo_seller.topic_preferences.update({"pharmacy": 0.0})
)

sim.run_until(DURATION)

# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def pharmacy_share(records, seller_id, t_lo, t_hi):
    """Share of pharmacy queries in [t_lo, t_hi) executed by the seller."""
    total = won = 0
    for record in records:
        if record.query.topic != "pharmacy":
            continue
        if not t_lo <= record.decided_at < t_hi:
            continue
        total += 1
        if seller_id in record.allocated_ids:
            won += 1
    return won / total if total else 0.0


records = mediator.records
during = pharmacy_share(records, promo_seller.participant_id, 0.0, PROMO_END)
after = pharmacy_share(records, promo_seller.participant_id, PROMO_END, DURATION)

print(f"queries mediated   : {mediator.mediations}")
print(f"allocation failures: {mediator.failures}")
print()
rows = [
    [
        buyer.participant_id,
        buyer.stats.queries_issued,
        buyer.stats.queries_completed,
        buyer.stats.mean_response_time,
        buyer.satisfaction,
    ]
    for buyer in buyers
]
print(
    render_table(
        ["segment", "issued", "completed", "mean rt (s)", "satisfaction"],
        rows,
        title="Buyer segments",
    )
)

print()
print(
    f"promotion seller's share of pharmacy queries: "
    f"{during:.0%} during the campaign -> {after:.0%} after it ended"
)

# capability restrictions must never be violated
violations = 0
capability = {s.participant_id: set(t for t in CATEGORIES if registry.can_serve(s, t))
              for s in sellers}
for record in records:
    for seller_id in record.allocated_ids:
        if record.query.topic not in capability[seller_id]:
            violations += 1
print(f"capability violations: {violations}")
assert violations == 0

assert during > after, "the promotion should have boosted the seller's share"
print()
print(
    "SbQA routed the campaign traffic to the interested seller while the "
    "promotion ran, then re-balanced when its intentions changed -- no "
    "reconfiguration, just intentions."
)
