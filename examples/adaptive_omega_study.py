#!/usr/bin/env python
"""A study of Equation 2: what the adaptive omega actually does.

Omega decides whose intentions dominate the SQLB score.  Equation 2
sets it per (consumer, provider) pair from their satisfaction gap::

    omega = ((delta_s(c) - delta_s(p)) + 1) / 2

so whichever side is currently worse off gets the louder voice.  This
study runs the same captive BOINC workload under omega = 0 (consumers
rule), omega = 1 (providers rule) and the adaptive rule, then shows:

1. the satisfaction *gap* |consumer - provider| over time -- adaptive
   omega keeps it smallest (that is the "equity at all levels" the
   paper claims);
2. where each setting lands on the consumer-vs-provider satisfaction
   plane (the extremes bracket the adaptive point);
3. the omega values SbQA actually used over the run.

Run:  python examples/adaptive_omega_study.py        (~15 s)
"""

from repro.analysis.ascii_plot import multi_sparkline
from repro.analysis.stats import mean
from repro.analysis.tables import render_table
from repro.api import Experiment

DURATION = 1200.0
N_PROVIDERS = 80

SETTINGS = [
    ("omega=0 (consumers rule)", 0.0),
    ("omega=1 (providers rule)", 1.0),
    ("adaptive (Equation 2)", "adaptive"),
]

print(f"Running 3 x SbQA ({N_PROVIDERS} providers, {DURATION:.0f} s simulated)...")
builder = (
    Experiment.builder()
    .named("omega-study")
    .seed(20090301)
    .duration(DURATION)
    .providers(N_PROVIDERS)
    .keep_records()
)
for label, omega in SETTINGS:
    builder.policy("sbqa", label=label, omega=omega)
runs = builder.run().runs

# ----------------------------------------------------------------------
# 1. Satisfaction gap over time
# ----------------------------------------------------------------------
gaps = {}
for run in runs:
    consumer = run.hub.consumer_satisfaction.values
    provider = run.hub.provider_satisfaction.values
    gaps[run.label] = [abs(c - p) for c, p in zip(consumer, provider)]

print()
print("|consumer satisfaction - provider satisfaction| over time (lower = fairer)")
print(multi_sparkline(gaps, width=60))

# ----------------------------------------------------------------------
# 2. Where each setting lands
# ----------------------------------------------------------------------
rows = []
for run in runs:
    s = run.summary
    rows.append(
        [
            run.label,
            s.consumer_satisfaction_final,
            s.provider_satisfaction_final,
            abs(s.consumer_satisfaction_final - s.provider_satisfaction_final),
            s.mean_response_time,
        ]
    )
print()
print(
    render_table(
        ["setting", "cons sat", "prov sat", "gap", "mean rt (s)"],
        rows,
        title="Final satisfaction per omega setting",
    )
)

# ----------------------------------------------------------------------
# 3. The omegas Equation 2 actually produced
# ----------------------------------------------------------------------
adaptive_run = runs[2]
used = [w for record in adaptive_run.mediator.records for w in record.omegas.values()]
buckets = [0] * 10
for w in used:
    buckets[min(9, int(w * 10))] += 1
total = sum(buckets)
print()
print(f"distribution of the {total} omegas Equation 2 produced:")
for i, count in enumerate(buckets):
    bar = "#" * round(60 * count / max(buckets))
    print(f"  [{i/10:.1f}, {(i+1)/10:.1f})  {bar} {count}")
print(f"  mean omega: {mean(used):.3f}")

# ----------------------------------------------------------------------
# Shape checks (the claims this study demonstrates)
# ----------------------------------------------------------------------
gap_tail = {label: mean(values[len(values) // 2 :]) for label, values in gaps.items()}
adaptive_label = SETTINGS[2][0]
assert gap_tail[adaptive_label] <= min(
    gap_tail[SETTINGS[0][0]], gap_tail[SETTINGS[1][0]]
) + 0.02, gap_tail
print()
print(
    "Adaptive omega held the smallest satisfaction gap -- the mediator "
    "dynamically traded consumers' interests for providers' interests, "
    "exactly the fairness mechanism SbQA is named after."
)
