#!/usr/bin/env python
"""The federation tour: sweep the shard count, slice the signal.

Sharding the mediator is free at K=1 (bit-identical to the flat run)
and cheap at the throughput level (see docs/performance.md), but each
shard's mediator only *owns* a slice of the provider population -- so
the satisfaction signal, read per shard slice, is where a partition
that is too fine shows up first.  This study walks that trade-off:

1. **declare** -- a ``SweepSpec`` whose single axis is
   ``federation.shards`` over K in {1, 2, 4, 8} (the base spec carries
   a ``federation`` block, which is what makes the axis addressable);
2. **run** -- serially with ``keep_runs`` so the full ``RunResult``
   (registry, shard map) stays inspectable per replication;
3. **slice** -- group providers by their home shard and aggregate
   final provider satisfaction per slice: the spread between the
   best- and worst-served slice is the degradation signal;
4. **test** -- Welch t-tables of every K against the K=1 baseline,
   Holm-corrected as one family per metric.

Run:  python examples/federation_study.py        (~40 s)
"""

from pathlib import Path
from statistics import mean

from repro.analysis.significance import Comparison, holm_adjust, welch_t_test
from repro.api import Experiment, SweepSession, SweepSpec
from repro.federation import ShardMap

SPEC_PATH = Path(__file__).parent / "specs" / "federation_sweep.json"

# ----------------------------------------------------------------------
# 1. Declare: one axis, the shard count.  .shards(1) gives the base
#    spec its federation block -- without it the axis path
#    "federation.shards" has nothing to address and construction fails.
# ----------------------------------------------------------------------
sweep = (
    Experiment.builder()
    .named("federation-study")
    .seed(11)
    .duration(400)
    .providers(48)
    .policy("sbqa", k=20, kn=10)
    .replications(3)                      # >= 2 enables the t-tests
    .shards(1)
    .sweep()
    .named("federation-sweep")
    .axis("federation.shards", [1, 2, 4, 8])
    .build()
)
print(f"grid: {len(sweep)} points, {len(SweepSession(sweep))} runs")

# The committed spec file is the same grid; `sbqa sweep --spec
# examples/specs/federation_sweep.json` runs it from the CLI.
if SPEC_PATH.exists():
    assert SweepSpec.load(SPEC_PATH) == sweep, "committed spec drifted"
    print(f"matches the committed spec: {SPEC_PATH}\n")

# ----------------------------------------------------------------------
# 2. Run: serial + keep_runs, so each point's RunResult keeps the live
#    registry (parallel workers ship summaries back, not simulations).
# ----------------------------------------------------------------------
result = SweepSession(sweep).run(keep_runs=True)
print(result.table())

# ----------------------------------------------------------------------
# 3. Slice: per point, group providers by home shard and aggregate
#    final satisfaction per slice.  K=1 is the degenerate partition
#    (one slice == the whole population); as K grows the slices thin
#    out and the per-slice signal spreads.
# ----------------------------------------------------------------------
print("\nper-shard satisfaction slices (provider_sat, mean over replications):")
for point in result.points:
    federation = point.point.spec.federation
    shard_map = ShardMap(federation)
    runs = point.experiment.runs
    slices = {ordinal: [] for ordinal in range(federation.shards)}
    for run in runs:
        per_shard = {ordinal: [] for ordinal in range(federation.shards)}
        for provider in run.registry.providers:
            home = shard_map.shard_of_provider(provider.participant_id)
            per_shard[home].append(provider.satisfaction)
        for ordinal, values in per_shard.items():
            slices[ordinal].append(mean(values) if values else float("nan"))
    means = {ordinal: mean(values) for ordinal, values in slices.items()}
    worst, best = min(means.values()), max(means.values())
    sizes = {ordinal: 0 for ordinal in range(federation.shards)}
    for provider in runs[0].registry.providers:
        sizes[shard_map.shard_of_provider(provider.participant_id)] += 1
    print(f"  {point.label:12s} spread {best - worst:.3f} "
          f"(best slice {best:.3f}, worst {worst:.3f}; "
          f"slice sizes {sorted(sizes.values(), reverse=True)})")

# ----------------------------------------------------------------------
# 4. Test: each K against the K=1 baseline, one Holm family per
#    metric.  The effect is non-monotone by design: mid-size shards
#    (K=2, K=4 here) keep home pools above the kn forwarding threshold,
#    so each mediator allocates from its slice alone and quality drops;
#    at K=8 the shards are thin enough that the forwarding gate opens,
#    the merged pool restores flat-run quality, and the price moves to
#    the coordination-message column instead.  The t-table is the
#    evidence, not an assumption.
# ----------------------------------------------------------------------
baseline = result.point("shards=1").policy("sbqa")
for metric in ("consumer_sat_final", "provider_sat_final", "mean_rt"):
    family = []
    for k in (2, 4, 8):
        contender = result.point(f"shards={k}").policy("sbqa")
        samples_a = baseline.values(metric)
        samples_b = contender.values(metric)
        t, dof, p = welch_t_test(samples_a, samples_b)
        family.append(Comparison(
            metric=metric,
            label_a="shards=1",
            label_b=f"shards={k}",
            mean_a=mean(samples_a),
            mean_b=mean(samples_b),
            difference=mean(samples_a) - mean(samples_b),
            t_statistic=t,
            degrees_of_freedom=dof,
            p_value=p,
        ))
    print()
    for comparison in holm_adjust(family):
        flag = "  *" if comparison.significant() else ""
        print(f"  {comparison.format()}{flag}")
