#!/usr/bin/env python
"""The layered API tour: spec -> builder -> session.

Walks the three layers introduced by :mod:`repro.api`:

1. **builder** -- declare an experiment fluently, covering population,
   autonomy, policies and replications;
2. **spec** -- the same experiment as a serializable value: save it,
   diff it, reload it, ship it to `sbqa run --spec`;
3. **session** -- execute it (parallel replications produce results
   bit-identical to serial), then step a single run incrementally and
   watch the mediator work live.

Run:  python examples/experiment_api.py        (~15 s)
"""

import tempfile
from pathlib import Path

from repro.api import Experiment, ExperimentSpec, Session

# ----------------------------------------------------------------------
# 1. Declare: a churn study comparing SbQA against the BOINC dispatcher.
# ----------------------------------------------------------------------
spec = (
    Experiment.builder()
    .named("churn-study")
    .seed(7)
    .duration(900)
    .providers(60)
    .autonomous(rejoin_cooldown=120.0)
    .policy("sbqa", kn=5)
    .policy("capacity")
    .replications(4)
    .build()
)

# ----------------------------------------------------------------------
# 2. Serialize: specs are plain data and survive the JSON round trip.
# ----------------------------------------------------------------------
path = Path(tempfile.mkdtemp()) / "churn-study.json"
spec.save(path)
assert ExperimentSpec.load(path) == spec
print(f"spec saved to {path} ({path.stat().st_size} bytes); "
      f"run it any time with: sbqa run --spec {path}")

# ----------------------------------------------------------------------
# 3. Execute: all policies x replications, fanned out over processes.
# ----------------------------------------------------------------------
result = Session(spec).run(parallel=True)
print()
print(result.comparison_table(columns=(
    "provider_sat_final", "consumer_sat_final", "mean_rt",
    "providers_remaining", "provider_departures",
)))
winner = result.best("provider_sat_final")
print(f"best provider satisfaction: {winner.label} "
      f"({winner.cell('provider_sat_final')})")

# ----------------------------------------------------------------------
# 4. Step a single run live: the demo's "drawing results on-line" view.
# ----------------------------------------------------------------------
print()
print("stepping one sbqa run, 150 simulated seconds at a time:")
live = Session(spec).start(policy="sbqa")
while not live.finished:
    live.step_until(live.now + 150.0)
    print(f"  t={live.now:6.0f}s  mediations={live.mediator.mediations:4d}  "
          f"completed={live.hub.queries_completed:4d}  "
          f"providers online={len(live.registry.online_providers()):3d}")
run = live.finalize()
print(f"final summary: provider sat "
      f"{run.summary.provider_satisfaction_final:.3f}, "
      f"mean rt {run.summary.mean_response_time:.1f}s")
