#!/usr/bin/env python
"""The tuning tour: declare a race, stream the eliminations, read the trace.

Walks the adaptive-experimentation subsystem end to end:

1. **declare** -- a ``TuneSpec``: a sweep grid as the search space, an
   objective metric raced on one policy, a successive-halving rung
   schedule, a total run budget, and the elimination level ``alpha``;
2. **race** -- rung by rung over a shared process pool: each rung deepens
   the survivors' replications, then challengers *significantly worse*
   than the incumbent (Welch's t-test, Holm-corrected within the rung)
   are eliminated -- dominated points never reach full depth;
3. **read** -- the winner, the elimination trace with p-values, the runs
   saved versus the exhaustive sweep, and the surviving points bridged
   back into a regular ``SweepResult``.

Run:  python examples/tune_study.py        (~15 s)
"""

import tempfile
from pathlib import Path

from repro.api import Experiment, TuneSession, TuneSpec
from repro.api.tune import TuneRungEvent, TuneStopEvent

# ----------------------------------------------------------------------
# 1. Declare: race omega x kn for consumer satisfaction under a budget.
#    The sweep chain builds the search space; .tune() turns it into a
#    race.  rungs(2, 3, 6) = race at 2 replications, promote survivors
#    to 3, finish them at 6 (the full experiment).
# ----------------------------------------------------------------------
tune = (
    Experiment.builder()
    .named("omega-race")
    .seed(7)
    .duration(400)
    .providers(30)
    .policy("sbqa", k=20, kn=10)
    .policy("capacity")
    .replications(6)
    .sweep()
    .named("omega-x-kn")
    .axis("sbqa.omega", [0.0, 0.5, 1.0, "adaptive"])
    .axis("sbqa.kn", [1, 10])
    .tune()
    .named("omega-race")
    .objective("consumer_sat_final")     # maximized (metric default)
    .rungs(2, 3, 6)
    .budget(70)                          # exhaustive would be 96 runs
    .alpha(0.05)
    .build()
)
print(f"search space: {len(tune.sweep)} points, exhaustive "
      f"{tune.exhaustive_runs} runs, budget {tune.budget}, "
      f"rungs {tune.rungs}")

# Tunes are plain data too: save, diff, share, `sbqa tune --spec`.
path = Path(tempfile.mkdtemp()) / "omega-race.json"
tune.save(path)
assert TuneSpec.load(path) == tune
print(f"spec saved to {path}; rerun it with: sbqa tune --spec {path}\n")

# ----------------------------------------------------------------------
# 2. Race: stream the rung decisions as they are made.  TuneRunEvents
#    (one per simulation) are skipped here; TuneRungEvents carry the
#    promotions and eliminations with their Holm-corrected p-values.
# ----------------------------------------------------------------------
stream = TuneSession(tune).stream(parallel=True)
for event in stream:
    if isinstance(event, TuneRungEvent):
        record = event.record
        print(f"rung {record.rung + 1}: {len(record.contenders)} contenders "
              f"at {record.replications} reps -> incumbent {record.incumbent}, "
              f"{len(record.eliminated)} eliminated "
              f"({record.runs_total} runs so far)")
        for elimination in record.eliminated:
            print(f"   x {elimination.label}: mean {elimination.mean:.4f} "
                  f"vs {elimination.incumbent_mean:.4f}, "
                  f"p_holm={elimination.p_adjusted:.4f}")
    elif isinstance(event, TuneStopEvent):
        print(f"stopped early: {event.reason}")
result = stream.result()

# ----------------------------------------------------------------------
# 3. Read: the trace table, the winner, and the sweep-compatible view
#    of the surviving points (bit-for-bit what the exhaustive sweep
#    would have produced for them).
# ----------------------------------------------------------------------
print()
print(result.table())
winner = result.winner
print(f"\nwinner: {winner.label} with consumer_sat_final "
      f"{result.objective_cell(winner)} "
      f"({result.runs_saved} of {result.exhaustive_runs} runs saved)")

survivors = result.sweep_result()
print(f"\nsurviving points as a SweepResult "
      f"({len(survivors.points)} of {len(tune.sweep)} points):")
print(survivors.table(columns=("consumer_sat_final", "mean_rt",
                               "coordination_messages")))
