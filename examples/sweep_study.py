#!/usr/bin/env python
"""The sweep tour: declare a grid, stream it, read the significance.

Walks the sweep subsystem end to end:

1. **declare** -- a ``SweepSpec`` over the paper's two tuning knobs
   (``omega`` x ``kn``), products and zipped axes both shown;
2. **stream** -- execute the whole ``points x policies x replications``
   queue over a shared process pool and render each point's aggregate
   the moment it completes (no per-point barrier);
3. **read** -- best-per-metric cells, Welch t-tests against the
   runner-up, pairwise per-point comparisons, tidy CSV export.

Run:  python examples/sweep_study.py        (~10 s)
"""

import tempfile
from pathlib import Path

from repro.api import Experiment, SweepSession, SweepSpec

# ----------------------------------------------------------------------
# 1. Declare: the omega x kn grid over an SbQA-vs-capacity comparison.
#    Product axes cross; a shared zip_group would advance in lockstep.
# ----------------------------------------------------------------------
sweep = (
    Experiment.builder()
    .named("omega-study")
    .seed(7)
    .duration(400)
    .providers(30)
    .policy("sbqa", k=20, kn=10)
    .policy("capacity")
    .replications(3)                      # >= 2 enables the t-tests
    .sweep()
    .named("omega-x-kn")
    .axis("sbqa.omega", [0.0, 0.5, 1.0, "adaptive"])
    .axis("sbqa.kn", [2, 10])
    .build()
)
print(f"grid: {len(sweep)} points "
      f"({' x '.join(axis.label for axis in sweep.axes)}), "
      f"{len(SweepSession(sweep))} simulation runs")

# Sweeps are plain data too: save, diff, share, `sbqa sweep --spec`.
path = Path(tempfile.mkdtemp()) / "omega-x-kn.json"
sweep.save(path)
assert SweepSpec.load(path) == sweep
print(f"spec saved to {path}; rerun it with: sbqa sweep --spec {path}\n")

# ----------------------------------------------------------------------
# 2. Stream: one shared pool, tasks of all points interleaved; partial
#    results render while the rest of the grid is still running.
# ----------------------------------------------------------------------
stream = SweepSession(sweep).stream(parallel=True)
for event in stream:
    if event.point_result is not None:
        sbqa = event.point_result.policy("sbqa")
        print(f"  [{event.completed:2d}/{event.total}] {event.point_result.label:24s}"
              f" sbqa cons sat {sbqa.cell('consumer_sat_final')}")
result = stream.result()   # identical however the stream was consumed

# ----------------------------------------------------------------------
# 3. Read: trade-off table, significance, tidy export.
# ----------------------------------------------------------------------
print()
print(result.table())
print()
best = result.best_summary("consumer_sat_final")
runner_up = best["runner_up"]
verdict = (
    "no t-test (needs >= 2 replications)" if best["p_value"] is None
    else f"p={best['p_value']:.4f} vs {runner_up['policy']} at {runner_up['point']}"
)
print(f"best consumer satisfaction: {best['policy']} at {best['point']} "
      f"({best['mean']:.3f}; {verdict})")
for comparison in result.point(best["point"]).comparisons():
    print(f"  {comparison.format()}")

csv_path = path.with_suffix(".csv")
result.to_csv(csv_path)
print(f"\ntidy per-replication rows exported to {csv_path}")
