#!/usr/bin/env python
"""Quickstart: assemble a mediated system by hand and watch SbQA work.

Builds the smallest interesting system -- one consumer, six providers
with sharply different interests -- runs fifty queries through the SbQA
mediator, and prints who got what and how satisfied everyone ended up.

Run:  python examples/quickstart.py
"""

from repro import (
    Consumer,
    Mediator,
    Network,
    Provider,
    RandomRoot,
    SbQAConfig,
    SbQAPolicy,
    Simulator,
    SystemRegistry,
)

# ----------------------------------------------------------------------
# 1. The simulation kernel: a clock, an event queue, a network.
# ----------------------------------------------------------------------
sim = Simulator()
network = Network(sim)  # zero latency is fine for a demo
registry = SystemRegistry()
root = RandomRoot(seed=7)

# ----------------------------------------------------------------------
# 2. Providers: three love this consumer's work, three dislike it.
#    (Preferences are intentions in [-1, 1]: 1 = "very much", -1 = "no".)
# ----------------------------------------------------------------------
for index in range(6):
    preference = 0.8 if index < 3 else -0.6
    provider = Provider(
        sim,
        network,
        participant_id=f"volunteer-{index}",
        capacity=1.0,
        preferences={"sky-survey": preference},
    )
    registry.add_provider(provider)

# ----------------------------------------------------------------------
# 3. A consumer that mildly trusts everyone.
# ----------------------------------------------------------------------
consumer = Consumer(
    sim,
    network,
    participant_id="sky-survey",
    preferences={p.participant_id: 0.4 for p in registry.providers},
)
registry.add_consumer(consumer)

# ----------------------------------------------------------------------
# 4. The mediator running SbQA: KnBest (k=4, kn=2) + SQLB scoring with
#    the adaptive omega of Equation 2.
# ----------------------------------------------------------------------
policy = SbQAPolicy(SbQAConfig(k=4, kn=2), root.stream("knbest"))
mediator = Mediator(sim, network, registry, policy)
consumer.attach_mediator(mediator)

# ----------------------------------------------------------------------
# 5. Issue fifty queries, one every 10 simulated seconds.
# ----------------------------------------------------------------------
for i in range(50):
    sim.schedule_at(
        10.0 * i, lambda: consumer.issue("sky-survey", service_demand=8.0)
    )
sim.run()

# ----------------------------------------------------------------------
# 6. Results: the willing volunteers did (almost) all the work and are
#    satisfied; the reluctant ones were spared and the consumer is happy.
# ----------------------------------------------------------------------
print(f"simulated time      : {sim.now:.0f} s")
print(f"queries completed   : {consumer.stats.queries_completed}")
print(f"mean response time  : {consumer.stats.mean_response_time:.2f} s")
print(f"consumer satisfaction: {consumer.satisfaction:.3f}")
print()
print("provider              pref   executed   satisfaction")
for provider in registry.providers:
    preference = provider.preferences["sky-survey"]
    print(
        f"{provider.participant_id:<20} {preference:+.1f}   "
        f"{provider.stats.queries_completed:8d}   {provider.satisfaction:.3f}"
    )

willing = [p for p in registry.providers if p.preferences["sky-survey"] > 0]
reluctant = [p for p in registry.providers if p.preferences["sky-survey"] < 0]
willing_work = sum(p.stats.queries_completed for p in willing)
reluctant_work = sum(p.stats.queries_completed for p in reluctant)
print()
print(
    f"work split: willing providers executed {willing_work}, "
    f"reluctant ones {reluctant_work} -- SbQA routed the load to those who want it."
)
