#!/usr/bin/env python
"""Crash resilience: why BOINC replicates queries.

The paper notes that "consumers may create several instances of a query
so as to validate results returned by providers" -- replication also
defends against volunteers that fail abruptly.  This example injects
crashes (exponential mean time to failure, host reboots after 120 s)
into an SbQA-mediated platform and compares three replication designs:

* one replica, no safety margin;
* two replicas, both required (the strict-validation reading);
* two replicas, first answer wins (quorum = 1).

Consumers write off queries whose results have not arrived within a
deadline; the write-off rate is what replication is buying down.

Run:  python examples/crash_resilience.py        (~10 s)
"""

from repro.analysis.tables import render_table
from repro.api import Experiment
from repro.system.failures import FailureConfig

DURATION = 1200.0
N_PROVIDERS = 80
FAILURES = FailureConfig(mttf=600.0, repair_time=120.0, start=60.0)
DEADLINE = 240.0

VARIANTS = (
    ("1 replica", dict(n_results=1, quorum=None)),
    ("2 replicas, both required", dict(n_results=2, quorum=None)),
    ("2 replicas, quorum 1", dict(n_results=2, quorum=1)),
)

print(
    f"Injecting crashes (MTTF {FAILURES.mttf:.0f}s, repair "
    f"{FAILURES.repair_time:.0f}s) into {N_PROVIDERS} volunteers "
    f"for {DURATION:.0f} simulated seconds..."
)

rows = []
results = []
for label, overrides in VARIANTS:
    result = (
        Experiment.builder()
        .named(f"crash-{label}")
        .seed(20090301)
        .duration(DURATION)
        .providers(N_PROVIDERS)
        .population(**overrides)
        .failures(FAILURES.mttf, FAILURES.repair_time, FAILURES.start,
                  result_timeout=DEADLINE)
        .policy("sbqa", label=label)
        .run()
        .runs[0]
    )
    results.append(result)
    s = result.summary
    rows.append(
        [
            label,
            s.provider_crashes,
            s.queries_lost_to_crashes,
            s.queries_timed_out,
            s.queries_timed_out / max(1, s.queries_issued),
            s.mean_response_time,
        ]
    )

print()
print(
    render_table(
        [
            "design",
            "crashes",
            "results lost",
            "queries written off",
            "write-off rate",
            "mean rt (s)",
        ],
        rows,
        title="Replication vs crash injection (SbQA mediation)",
        decimals=4,
    )
)

no_margin, strict, quorum = rows
print()
print(
    f"With {no_margin[1]} crashes in the run, the single-replica design "
    f"wrote off {no_margin[3]} queries and the strict two-replica design "
    f"{strict[3]} (every crash kills the whole query)."
)
print(
    f"The quorum design wrote off {quorum[3]}: a crash costs one replica, "
    f"the surviving one still answers -- and taking the first answer also "
    f"cut the mean response time from {strict[5]:.1f}s to {quorum[5]:.1f}s."
)

assert quorum[4] <= min(no_margin[4], strict[4])
print()
print("Replication with a quorum is the crash defence; replication "
      "without one is just extra exposure.")
