#!/usr/bin/env python
"""The paper's BOINC study: what dissatisfaction costs a platform.

Reproduces the heart of the demonstration (Scenarios 2 and 4) at a
moderate scale: three research projects -- a popular SETI@home-like
one, a normal proteins@home-like one, an unpopular Einstein@home-like
one -- served by a heterogeneous volunteer population that is *free to
leave* when dissatisfied (provider threshold 0.35, consumer 0.5).

Compares the BOINC-equivalent capacity-based dispatcher, the economic
(Mariposa-style) baseline, and SbQA, then prints the population,
capacity and satisfaction trajectories.

Run:  python examples/boinc_volunteer_computing.py        (~20 s)
"""

from repro.experiments.report import render_comparison, render_run_series
from repro.experiments.scenarios import scenario4_autonomous

DURATION = 1600.0
N_PROVIDERS = 100

print("Simulating an autonomous BOINC platform "
      f"({N_PROVIDERS} volunteers, {DURATION:.0f} simulated seconds)...")
result = scenario4_autonomous(duration=DURATION, n_providers=N_PROVIDERS)

print()
print(
    render_comparison(
        result.runs,
        columns=(
            "provider_sat_final",
            "consumer_sat_final",
            "mean_rt",
            "providers_remaining",
            "provider_departures",
            "capacity_remaining_fraction",
            "throughput",
        ),
        title="Allocation technique comparison (autonomous environment)",
    )
)

print()
print(render_run_series(result.runs, "providers_online"))
print()
print(render_run_series(result.runs, "provider_satisfaction"))

print()
print("Per-project outcome under SbQA:")
sbqa = result.run("sbqa")
for row in sbqa.summary.consumers:
    print(
        f"  {row.consumer_id:<10} satisfaction={row.satisfaction:.3f} "
        f"completed={row.completed:5d} mean rt={row.mean_response_time:7.1f} s"
    )

print()
for claim in result.claims:
    verdict = "PASS" if claim.passed else "FAIL"
    print(f"[{verdict}] {claim.description}")
    print(f"       {claim.details}")

sbqa_summary = result.run("sbqa").summary
capacity_summary = result.run("capacity").summary
kept = sbqa_summary.providers_remaining - capacity_summary.providers_remaining
print()
print(
    f"Bottom line: satisfaction-aware allocation kept {kept} more volunteers "
    f"online than the BOINC-equivalent dispatcher -- that is the capacity the "
    f"paper argues interest-blind allocation throws away."
)
